"""The summary-cache proxy prototype.

Each proxy runs two endpoints on localhost:

- a **TCP HTTP front end** serving clients (and peer proxies fetching
  remote hits), backed by an in-memory :class:`~repro.cache.WebCache`
  of document bodies;
- a **UDP ICP endpoint** answering ``ICP_OP_QUERY`` and absorbing
  ``ICP_OP_DIRUPDATE`` messages from peers.

Cooperation modes (:class:`~repro.proxy.config.ProxyMode`):

``no-icp``
    misses go straight to the origin server.
``icp``
    every miss multicasts an ``ICP_OP_QUERY`` to all peers and waits for
    the first HIT (or all MISSes / timeout) -- the overhead pattern
    measured in Section IV.
``sc-icp``
    the paper's protocol: the proxy keeps a counting Bloom filter of its
    own directory and a plain-filter copy per peer (initialized by the
    first DIRUPDATE received, per Section VI-B), probes the copies on a
    miss, and queries only promising peers.  When the fraction of new
    documents since the last update reaches the threshold, the pending
    bit flips are drained into MTU-sized DIRUPDATE messages and sent to
    every peer.  With ``update_encoding="digest"`` the whole bit array
    is shipped in ICP_OP_DIGEST chunks instead (the Squid cache-digest
    variant).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache import WebCache
from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily
from repro.core.summary import expected_documents_for_cache
from repro.errors import ProtocolError, ProxyError
from repro.protocol.update import (
    DigestAssembler,
    apply_dir_update,
    build_digest_messages,
    build_dir_update_messages,
)
from repro.protocol.wire import (
    DigestChunk,
    DirUpdate,
    IcpHit,
    IcpMiss,
    IcpQuery,
    decode_message,
)
from repro.proxy.config import PeerAddress, ProxyConfig, ProxyMode
from repro.proxy.http import (
    HttpResponse,
    read_request,
    read_response,
    write_request,
    write_response,
)


@dataclass
class ProxyStats:
    """Counters mirroring what the paper measures per proxy.

    UDP counters correspond to the paper's ``netstat`` UDP datagram
    counts; ``false_query_rounds`` are SC-ICP query rounds in which no
    queried peer actually held the document (false hits).
    """

    http_requests: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    remote_fetch_failures: int = 0
    false_query_rounds: int = 0
    origin_fetches: int = 0
    bytes_served: int = 0
    icp_queries_sent: int = 0
    icp_queries_received: int = 0
    icp_replies_sent: int = 0
    icp_replies_received: int = 0
    dirupdates_sent: int = 0
    dirupdates_received: int = 0
    summary_resizes: int = 0
    udp_sent: int = 0
    udp_received: int = 0
    peer_served_requests: int = 0

    @property
    def hit_ratio(self) -> float:
        """Local + remote hits over client requests."""
        if not self.http_requests:
            return 0.0
        return (self.local_hits + self.remote_hits) / self.http_requests


class _PeerState:
    """What a proxy knows about one neighbour."""

    __slots__ = ("address", "summary", "alive", "assembler")

    def __init__(self, address: PeerAddress) -> None:
        self.address = address
        #: Plain Bloom filter copy; ``None`` until the first DIRUPDATE
        #: arrives ("The structure is initialized when the first summary
        #: update message is received from the neighbor").
        self.summary: Optional[BloomFilter] = None
        self.alive = True
        #: Reassembles whole-filter transfers in digest mode.
        self.assembler = DigestAssembler()


class _IcpProtocol(asyncio.DatagramProtocol):
    """Datagram glue delivering packets to the owning proxy."""

    def __init__(self, proxy: "SummaryCacheProxy") -> None:
        self._proxy = proxy
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self._proxy._on_datagram(data, addr)


class _PendingQuery:
    """Bookkeeping for one outstanding ICP query round."""

    __slots__ = ("future", "outstanding")

    def __init__(self, outstanding: set) -> None:
        self.future: asyncio.Future = (
            asyncio.get_event_loop().create_future()
        )
        self.outstanding = outstanding


class SummaryCacheProxy:
    """One prototype proxy instance.

    Parameters
    ----------
    config:
        Ports, mode, cache size, summary geometry, update threshold.
    origin_address:
        ``(host, port)`` of the origin server all misses go to.  (The
        experiments use a single origin; a resolver callable could
        replace this without touching the protocol paths.)
    """

    def __init__(
        self,
        config: ProxyConfig,
        origin_address: Tuple[str, int],
    ) -> None:
        self.config = config
        self.origin_address = origin_address
        self.stats = ProxyStats()
        self._bodies: Dict[str, bytes] = {}
        self._summary = CountingBloomFilter.for_capacity(
            expected_documents_for_cache(
                config.cache_capacity, config.expected_doc_size
            ),
            load_factor=config.summary.load_factor,
            hash_family=MD5HashFamily(
                num_functions=config.summary.num_hashes
            ),
            counter_width=config.summary.counter_width,
        )
        self._cache = WebCache(
            config.cache_capacity,
            max_object_size=config.max_object_size,
            on_insert=self._on_cache_insert,
            on_evict=self._on_cache_evict,
        )
        self._new_since_update = 0
        self._peers: Dict[Tuple[str, int], _PeerState] = {}
        self._pending: Dict[int, _PendingQuery] = {}
        self._request_counter = 0
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._icp: Optional[_IcpProtocol] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the HTTP and ICP endpoints."""
        loop = asyncio.get_event_loop()
        self._http_server = await asyncio.start_server(
            self._handle_http, self.config.host, self.config.http_port
        )
        _transport, protocol = await loop.create_datagram_endpoint(
            lambda: _IcpProtocol(self),
            local_addr=(self.config.host, self.config.icp_port),
        )
        self._icp = protocol

    async def stop(self) -> None:
        """Shut both endpoints down."""
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        if self._icp is not None and self._icp.transport is not None:
            self._icp.transport.close()
            self._icp = None
        for pending in self._pending.values():
            if not pending.future.done():
                pending.future.cancel()
        self._pending.clear()

    @property
    def http_port(self) -> int:
        """Bound HTTP port (valid after :meth:`start`)."""
        if self._http_server is None:
            raise ProxyError(f"{self.config.name}: proxy is not running")
        return self._http_server.sockets[0].getsockname()[1]

    @property
    def icp_port(self) -> int:
        """Bound ICP/UDP port (valid after :meth:`start`)."""
        if self._icp is None or self._icp.transport is None:
            raise ProxyError(f"{self.config.name}: proxy is not running")
        return self._icp.transport.get_extra_info("sockname")[1]

    def address(self) -> PeerAddress:
        """This proxy's address record, for handing to its peers."""
        return PeerAddress(
            name=self.config.name,
            host=self.config.host,
            http_port=self.http_port,
            icp_port=self.icp_port,
        )

    def set_peers(self, peers: List[PeerAddress]) -> None:
        """Install the neighbour set (call after all proxies started)."""
        self._peers = {peer.icp_addr: _PeerState(peer) for peer in peers}

    def reset_peer(self, icp_addr: Tuple[str, int]) -> None:
        """Forget a peer's summary (Squid-style failure/recovery reinit)."""
        state = self._peers.get(icp_addr)
        if state is not None:
            state.summary = None

    # ------------------------------------------------------------------
    # Cache bookkeeping
    # ------------------------------------------------------------------

    def _on_cache_insert(self, url: str) -> None:
        self._summary.add(url)
        self._new_since_update += 1

    def _on_cache_evict(self, url: str) -> None:
        self._summary.remove(url)
        self._bodies.pop(url, None)

    def _store(self, url: str, body: bytes) -> None:
        """Admit a fetched document and maybe broadcast an update."""
        self._bodies[url] = body
        self._cache.put(url, len(body))
        if url not in self._cache:
            self._bodies.pop(url, None)  # rejected (too large)
        if self.config.mode is ProxyMode.SC_ICP:
            self._maybe_resize_summary()
            self._maybe_broadcast_update()

    def _maybe_resize_summary(self) -> None:
        """Grow the filter when the cache outruns its expected size.

        The filter was sized for ``cache_capacity / expected_doc_size``
        documents; if the cache holds far more (documents smaller than
        anticipated), the effective load factor -- and with it the
        false-hit rate at every peer -- degrades.  Rebuilding at double
        the bits from the live directory restores it; peers resync via
        a whole-filter digest (a delta cannot describe a geometry
        change).
        """
        threshold = self.config.resize_threshold
        if threshold <= 0:
            return
        expected = self._summary.num_bits // self.config.summary.load_factor
        if len(self._cache) <= expected * threshold:
            return
        rebuilt = CountingBloomFilter(
            self._summary.num_bits * 2,
            hash_family=self._summary.hash_family,
            counter_width=self.config.summary.counter_width,
        )
        for url in self._cache.urls():
            rebuilt.add(url)
        rebuilt.drain_flips()  # peers get a digest, not a delta
        self._summary = rebuilt
        self._new_since_update = 0
        self.stats.summary_resizes += 1
        self._broadcast_digest()

    def _broadcast_digest(self) -> None:
        """Ship the whole filter to every peer (resync after a resize)."""
        if not self._peers or self._icp is None:
            return
        transport = self._icp.transport
        messages = build_digest_messages(
            self._summary, mtu=self.config.mtu
        )
        for peer_addr, state in self._peers.items():
            if not state.alive:
                continue
            for message in messages:
                transport.sendto(message.encode(), peer_addr)
                self.stats.dirupdates_sent += 1
                self.stats.udp_sent += 1

    def _maybe_broadcast_update(self) -> None:
        docs = max(1, len(self._cache))
        if self._new_since_update / docs < self.config.update_threshold:
            return
        flips = self._summary.drain_flips()
        self._new_since_update = 0
        if not flips or not self._peers or self._icp is None:
            return
        if self.config.update_encoding == "digest":
            # Squid cache-digest style: ship the whole bit array.
            messages = build_digest_messages(
                self._summary, mtu=self.config.mtu
            )
        else:
            messages = build_dir_update_messages(
                flips,
                self._summary.hash_family,
                self._summary.num_bits,
                mtu=self.config.mtu,
            )
        transport = self._icp.transport
        for peer_addr, state in self._peers.items():
            if not state.alive:
                continue
            for message in messages:
                transport.sendto(message.encode(), peer_addr)
                self.stats.dirupdates_sent += 1
                self.stats.udp_sent += 1

    # ------------------------------------------------------------------
    # ICP datagram path
    # ------------------------------------------------------------------

    def _on_datagram(self, data: bytes, addr) -> None:
        self.stats.udp_received += 1
        try:
            message = decode_message(data)
        except ProtocolError:
            return  # garbage on the wire is dropped, never fatal
        if isinstance(message, IcpQuery):
            self._handle_query(message, addr)
        elif isinstance(message, (IcpHit, IcpMiss)):
            self._handle_reply(message, addr)
        elif isinstance(message, DirUpdate):
            self._handle_dir_update(message, addr)
        elif isinstance(message, DigestChunk):
            self._handle_digest_chunk(message, addr)

    def _handle_query(self, query: IcpQuery, addr) -> None:
        self.stats.icp_queries_received += 1
        if self._icp is None or self._icp.transport is None:
            return
        if query.url in self._cache:
            reply = IcpHit(
                url=query.url, request_number=query.request_number
            )
        else:
            reply = IcpMiss(
                url=query.url, request_number=query.request_number
            )
        self._icp.transport.sendto(reply.encode(), addr)
        self.stats.icp_replies_sent += 1
        self.stats.udp_sent += 1

    def _handle_reply(self, reply, addr) -> None:
        self.stats.icp_replies_received += 1
        pending = self._pending.get(reply.request_number)
        if pending is None or pending.future.done():
            return
        if isinstance(reply, IcpHit):
            pending.future.set_result(addr)
            return
        pending.outstanding.discard(addr)
        if not pending.outstanding:
            pending.future.set_result(None)

    def _handle_dir_update(self, update: DirUpdate, addr) -> None:
        self.stats.dirupdates_received += 1
        state = self._peers.get(addr)
        if state is None:
            return  # update from an unconfigured peer
        if (
            state.summary is None
            or state.summary.num_bits != update.bit_array_size
            or state.summary.hash_family.spec()
            != (update.function_num, update.function_bits)
        ):
            # First update from this peer, or the peer rebuilt its
            # filter (e.g. after restart): reinitialize from the
            # header's geometry.
            state.summary = BloomFilter(
                update.bit_array_size,
                hash_family=MD5HashFamily.from_spec(
                    update.function_num, update.function_bits
                ),
            )
        apply_dir_update(state.summary, update)

    def _handle_digest_chunk(self, chunk: DigestChunk, addr) -> None:
        """Feed a whole-filter chunk to the peer's reassembler."""
        self.stats.dirupdates_received += 1
        state = self._peers.get(addr)
        if state is None:
            return
        completed = state.assembler.add(chunk)
        if completed is not None:
            state.summary = completed

    # ------------------------------------------------------------------
    # HTTP path
    # ------------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError:
                write_response(writer, 400)
                await writer.drain()
                return
            if request.url == "/__stats__":
                await self._serve_stats(writer)
            elif request.header("x-only-if-cached"):
                await self._serve_peer(request, writer)
            else:
                await self._serve_client(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_stats(self, writer) -> None:
        """Serve the admin endpoint: counters and cache state as JSON."""
        payload = dict(asdict(self.stats))
        payload.update(
            {
                "name": self.config.name,
                "mode": self.config.mode.value,
                "cache_entries": len(self._cache),
                "cache_used_bytes": self._cache.used_bytes,
                "cache_capacity_bytes": self._cache.capacity_bytes,
                "summary_fill_ratio": self._summary.fill_ratio(),
                "peers": len(self._peers),
            }
        )
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        write_response(
            writer,
            200,
            body,
            headers={"Content-Type": "application/json"},
        )
        await writer.drain()

    async def _serve_peer(self, request, writer) -> None:
        """Serve a proxy-to-proxy fetch: cache or 504, never recurse."""
        body = self._lookup_local(request.url)
        if body is None:
            write_response(writer, 504, headers={"X-Cache": "MISS"})
        else:
            self.stats.peer_served_requests += 1
            write_response(
                writer, 200, body, headers={"X-Cache": "HIT"}
            )
        await writer.drain()

    async def _serve_client(self, request, writer) -> None:
        self.stats.http_requests += 1
        url = request.url
        size_hint = request.header("x-size")

        body = self._lookup_local(url)
        source = "HIT"
        if body is None:
            body, source = await self._miss_path(url, size_hint)
        else:
            self.stats.local_hits += 1

        self.stats.bytes_served += len(body)
        write_response(writer, 200, body, headers={"X-Cache": source})
        await writer.drain()

    def _lookup_local(self, url: str) -> Optional[bytes]:
        entry = self._cache.get(url)
        if entry is None:
            return None
        body = self._bodies.get(url)
        if body is None:  # cache/body desync would be a bug
            self._cache.remove(url)
            return None
        return body

    async def _miss_path(self, url: str, size_hint: str):
        """Resolve a local miss via peers (per mode) then the origin."""
        candidates = self._candidate_peers(url)
        if candidates:
            holder = await self._query_peers(url, candidates)
            if holder is not None:
                body = await self._fetch_from_peer(holder, url, size_hint)
                if body is not None:
                    self.stats.remote_hits += 1
                    self._store(url, body)
                    return body, "REMOTE-HIT"
                self.stats.remote_fetch_failures += 1
            else:
                self.stats.false_query_rounds += 1

        body = await self._fetch_from_origin(url, size_hint)
        self._store(url, body)
        return body, "MISS"

    def _candidate_peers(self, url: str) -> List[_PeerState]:
        """Which peers to query for *url*, per the cooperation mode."""
        if self.config.mode is ProxyMode.NO_ICP or not self._peers:
            return []
        alive = [s for s in self._peers.values() if s.alive]
        if self.config.mode is ProxyMode.ICP:
            return alive
        return [
            s
            for s in alive
            if s.summary is not None and s.summary.may_contain(url)
        ]

    async def _query_peers(
        self, url: str, candidates: List[_PeerState]
    ) -> Optional[_PeerState]:
        """Send ICP queries; return the first peer replying HIT."""
        if self._icp is None or self._icp.transport is None:
            return None
        self._request_counter += 1
        reqnum = self._request_counter & 0xFFFFFFFF
        outstanding = {s.address.icp_addr for s in candidates}
        pending = _PendingQuery(outstanding)
        self._pending[reqnum] = pending
        transport = self._icp.transport
        query = IcpQuery(url=url, request_number=reqnum)
        encoded = query.encode()
        for state in candidates:
            transport.sendto(encoded, state.address.icp_addr)
            self.stats.icp_queries_sent += 1
            self.stats.udp_sent += 1
        try:
            winner_addr = await asyncio.wait_for(
                pending.future, timeout=self.config.icp_timeout
            )
        except asyncio.TimeoutError:
            winner_addr = None
        finally:
            self._pending.pop(reqnum, None)
        if winner_addr is None:
            return None
        return self._peers.get(winner_addr)

    async def _fetch_from_peer(
        self, peer: _PeerState, url: str, size_hint: str
    ) -> Optional[bytes]:
        """HTTP-fetch a remote hit; ``None`` if the peer no longer has it."""
        headers = {"X-Only-If-Cached": "1"}
        if size_hint:
            headers["X-Size"] = size_hint
        try:
            response = await self._fetch(
                peer.address.host, peer.address.http_port, url, headers
            )
        except (ConnectionError, ProtocolError, OSError):
            return None
        if response.status != 200:
            return None
        return response.body

    async def _fetch_from_origin(self, url: str, size_hint: str) -> bytes:
        headers = {"X-Size": size_hint} if size_hint else {}
        self.stats.origin_fetches += 1
        response = await self._fetch(
            self.origin_address[0], self.origin_address[1], url, headers
        )
        if response.status != 200:
            raise ProxyError(
                f"origin returned {response.status} for {url!r}"
            )
        return response.body

    async def _fetch(
        self, host: str, port: int, url: str, headers
    ) -> HttpResponse:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            write_request(writer, url, headers)
            await writer.drain()
            return await read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # Introspection used by tests and benchmarks
    # ------------------------------------------------------------------

    @property
    def cache(self) -> WebCache:
        """The document cache (read-only use expected)."""
        return self._cache

    @property
    def summary(self) -> CountingBloomFilter:
        """This proxy's own counting Bloom filter."""
        return self._summary

    def peer_summary(self, icp_addr: Tuple[str, int]) -> Optional[BloomFilter]:
        """The current filter copy held for the peer at *icp_addr*."""
        state = self._peers.get(icp_addr)
        return state.summary if state else None
