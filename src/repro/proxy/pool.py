"""Keep-alive connection pooling for origin and peer fetches.

A miss used to cost a fresh TCP connection to the origin (or the
holding peer) every time; under load the connect/teardown dominates the
fetch.  :class:`ConnectionPool` keeps bounded per-``(host, port)`` idle
lists of keep-alive connections and hands them back out after a health
check, so sequential misses to the same upstream ride one socket.

The pool is deliberately transport-dumb: it opens, stores, and closes
``(StreamReader, StreamWriter)`` pairs and leaves all HTTP framing to
the caller.  The caller decides after each exchange whether the
connection is still reusable (the response said ``keep-alive`` and the
body was fully consumed) and either :meth:`~ConnectionPool.release`\\ s
it back or discards it.

Reuse is *checked, not guaranteed*: an idle upstream may close its end
between exchanges, so callers retry a failed exchange once on a fresh
connection before reporting an error (see
``SummaryCacheProxy._fetch``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class PoolStats:
    """Counters the pool accumulates (mirrored into the obs registry)."""

    created: int = 0
    reused: int = 0
    discarded: int = 0
    expired: int = 0


@dataclass
class PooledConnection:
    """One reusable upstream connection."""

    host: str
    port: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    #: ``perf_counter`` timestamp of the last release into the pool.
    idle_since: float = 0.0
    #: Number of exchanges served beyond the first.
    reuses: int = 0
    #: True when this acquire was served from the idle list (callers
    #: use it to decide whether a failure warrants a fresh-socket retry).
    was_reused: bool = field(default=False, compare=False)

    def healthy(self, idle_timeout: float) -> bool:
        """Whether the idle connection is still fit to hand out."""
        if self.writer.is_closing() or self.reader.at_eof():
            return False
        if idle_timeout > 0:
            return (perf_counter() - self.idle_since) <= idle_timeout
        return True

    def close(self) -> None:
        """Abort the transport (idle teardown needs no graceful close)."""
        if not self.writer.is_closing():
            self.writer.close()


class ConnectionPool:
    """Bounded idle-connection pool keyed by ``(host, port)``.

    Parameters
    ----------
    max_idle_per_host:
        Idle connections kept per upstream; 0 disables pooling entirely
        (every acquire opens and every release closes).
    idle_timeout:
        Seconds an idle connection stays eligible; stale entries are
        closed lazily on the next acquire against that upstream.
    on_reuse / on_create:
        Optional zero-argument hooks (the proxy wires these to its
        ``proxy_connections_reused_total`` counter family).
    """

    def __init__(
        self,
        max_idle_per_host: int = 8,
        idle_timeout: float = 10.0,
        on_reuse: Optional[Callable[[], None]] = None,
        on_create: Optional[Callable[[], None]] = None,
    ) -> None:
        self.max_idle_per_host = max_idle_per_host
        self.idle_timeout = idle_timeout
        self.stats = PoolStats()
        self._idle: Dict[Tuple[str, int], List[PooledConnection]] = {}
        self._on_reuse = on_reuse
        self._on_create = on_create
        self._closed = False

    def idle_count(self, host: str, port: int) -> int:
        """Idle connections currently parked for one upstream."""
        return len(self._idle.get((host, port), ()))

    @property
    def total_idle(self) -> int:
        """Idle connections across all upstreams."""
        return sum(len(conns) for conns in self._idle.values())

    async def acquire(self, host: str, port: int) -> PooledConnection:
        """A healthy pooled connection, or a freshly opened one."""
        key = (host, port)
        idle = self._idle.get(key)
        while idle:
            conn = idle.pop()
            if conn.healthy(self.idle_timeout):
                conn.reuses += 1
                conn.was_reused = True
                self.stats.reused += 1
                if self._on_reuse is not None:
                    self._on_reuse()
                return conn
            conn.close()
            self.stats.expired += 1
        reader, writer = await asyncio.open_connection(host, port)
        self.stats.created += 1
        if self._on_create is not None:
            self._on_create()
        return PooledConnection(host, port, reader, writer)

    def release(self, conn: PooledConnection, reusable: bool = True) -> None:
        """Return *conn* to the pool, or close it if not *reusable*."""
        if (
            not reusable
            or self._closed
            or self.max_idle_per_host <= 0
            or conn.writer.is_closing()
            or conn.reader.at_eof()
        ):
            conn.close()
            self.stats.discarded += 1
            return
        idle = self._idle.setdefault((conn.host, conn.port), [])
        if len(idle) >= self.max_idle_per_host:
            conn.close()
            self.stats.discarded += 1
            return
        conn.idle_since = perf_counter()
        conn.was_reused = False
        idle.append(conn)

    async def close(self) -> None:
        """Close every idle connection and refuse further parking."""
        self._closed = True
        for conns in self._idle.values():
            for conn in conns:
                conn.close()
        waiters = [
            conn.writer.wait_closed()
            for conns in self._idle.values()
            for conn in conns
        ]
        self._idle.clear()
        for waiter in waiters:
            try:
                await waiter
            except (ConnectionError, asyncio.CancelledError):
                pass
