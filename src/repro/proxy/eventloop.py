"""Optional event-loop acceleration for the live data plane.

``uvloop`` roughly doubles asyncio's socket throughput when available,
but the reproduction must run on a bare CPython toolchain, so it is a
soft dependency: :func:`install_uvloop` activates it when importable
and quietly reports ``False`` otherwise.  Results are identical either
way -- the data plane uses only the portable asyncio API surface.
"""

from __future__ import annotations

import logging

logger = logging.getLogger(__name__)


def install_uvloop() -> bool:
    """Install the uvloop event-loop policy if the package is present.

    Returns ``True`` when uvloop is now the active policy.  Call before
    ``asyncio.run``; a no-op (with a debug log) when uvloop is missing.
    """
    try:
        import uvloop  # noqa: PLC0415 - soft dependency probe
    except ImportError:
        logger.debug("uvloop not installed; using the default event loop")
        return False
    uvloop.install()
    logger.info("uvloop event-loop policy installed")
    return True
