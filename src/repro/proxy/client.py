"""Client drivers replaying workloads against a prototype proxy.

The paper's replay experiments bind clients to proxies two ways
(Section VII): experiment 3 preserves the client-to-proxy binding
("client processes on the same workstation connect to the same proxy
server"), experiment 4 round-robins requests across clients.  The
cluster harness implements both assignments on top of this driver.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ProtocolError
from repro.proxy.http import read_response, write_request
from repro.traces.model import Request


@dataclass
class ReplayReport:
    """What one client driver observed."""

    requests: int = 0
    errors: int = 0
    bytes_received: int = 0
    total_latency: float = 0.0
    cache_sources: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        """Mean per-request latency in seconds."""
        return self.total_latency / self.requests if self.requests else 0.0

    def merge(self, other: "ReplayReport") -> "ReplayReport":
        """Element-wise sum of two reports."""
        sources = dict(self.cache_sources)
        for key, count in other.cache_sources.items():
            sources[key] = sources.get(key, 0) + count
        return ReplayReport(
            requests=self.requests + other.requests,
            errors=self.errors + other.errors,
            bytes_received=self.bytes_received + other.bytes_received,
            total_latency=self.total_latency + other.total_latency,
            cache_sources=sources,
        )


class ClientDriver:
    """Issues GET requests sequentially (no think time) to one proxy."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.report = ReplayReport()

    async def fetch(self, url: str, size: int = 0) -> bytes:
        """Fetch one URL through the proxy; returns the body."""
        start = time.perf_counter()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            headers = {"X-Size": str(size)} if size else {}
            write_request(writer, url, headers)
            await writer.drain()
            response = await read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
        elapsed = time.perf_counter() - start
        self.report.requests += 1
        self.report.total_latency += elapsed
        if response.status != 200:
            self.report.errors += 1
            raise ProtocolError(
                f"proxy returned {response.status} for {url!r}"
            )
        self.report.bytes_received += len(response.body)
        source = response.header("x-cache", "UNKNOWN")
        self.report.cache_sources[source] = (
            self.report.cache_sources.get(source, 0) + 1
        )
        return response.body

    async def replay(self, requests: Sequence[Request]) -> ReplayReport:
        """Replay *requests* back-to-back; returns the accumulated report."""
        for req in requests:
            await self.fetch(req.url, size=req.size)
        return self.report


async def replay_concurrently(
    assignments: Sequence[Tuple["ClientDriver", Sequence[Request]]],
) -> ReplayReport:
    """Run several drivers' replays concurrently and merge their reports.

    Mirrors the benchmark's "client processes issue requests with no
    thinking time in between" -- each driver is serial, drivers run in
    parallel.
    """
    reports: List[ReplayReport] = await asyncio.gather(
        *(driver.replay(reqs) for driver, reqs in assignments)
    )
    merged = ReplayReport()
    for report in reports:
        merged = merged.merge(report)
    return merged
