"""Client drivers replaying workloads against a prototype proxy.

The paper's replay experiments bind clients to proxies two ways
(Section VII): experiment 3 preserves the client-to-proxy binding
("client processes on the same workstation connect to the same proxy
server"), experiment 4 round-robins requests across clients.  The
cluster harness implements both assignments on top of this driver.
"""

from __future__ import annotations

import asyncio
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError, ProxyError
from repro.obs.spans import TRACE_HEADER, TraceContext, format_id
from repro.proxy.http import HttpResponse, read_response, write_request
from repro.traces.model import Request

logger = logging.getLogger(__name__)


def _fresh_id() -> int:
    """A non-zero 32-bit id for client-originated trace context."""
    return int.from_bytes(os.urandom(4), "big") or 1


@dataclass
class ReplayReport:
    """What one client driver observed."""

    requests: int = 0
    errors: int = 0
    bytes_received: int = 0
    total_latency: float = 0.0
    cache_sources: Dict[str, int] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        """Mean per-request latency in seconds."""
        return self.total_latency / self.requests if self.requests else 0.0

    def merge(self, other: "ReplayReport") -> "ReplayReport":
        """Element-wise sum of two reports."""
        sources = dict(self.cache_sources)
        for key, count in other.cache_sources.items():
            sources[key] = sources.get(key, 0) + count
        return ReplayReport(
            requests=self.requests + other.requests,
            errors=self.errors + other.errors,
            bytes_received=self.bytes_received + other.bytes_received,
            total_latency=self.total_latency + other.total_latency,
            cache_sources=sources,
        )


class ClientDriver:
    """Issues GET requests sequentially (no think time) to one proxy.

    Parameters
    ----------
    host, port:
        HTTP address of the proxy this driver talks to.
    timeout:
        Optional per-request wall-clock budget in seconds.  A request
        exceeding it raises :class:`~repro.errors.ProxyError` after a
        warning carrying the proxy address and the request's trace id,
        so slow rounds can be correlated with the proxy-side trace ring.
    keep_alive:
        When true (the default), the driver holds one persistent
        connection to the proxy and rides it across requests,
        reconnecting transparently (at most once per request) if the
        proxy closed it between exchanges.  When false, every request
        opens and closes its own connection -- the pre-keep-alive
        behaviour the load generator uses as its baseline.  Cache
        behaviour is identical either way; only connection churn
        differs.
    send_trace:
        When true (the default), every request carries a fresh
        ``X-SC-Trace`` context, so the proxy's root span -- and
        everything the request causes on other proxies -- shares a
        trace id this driver knows (:attr:`last_trace`).  Turn off for
        the tracing-overhead baseline.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        keep_alive: bool = True,
        send_trace: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.send_trace = send_trace
        self.report = ReplayReport()
        #: Trace id (8-hex-digit form) of the most recent completed
        #: request: the proxy's echoed ``X-SC-Trace`` when present,
        #: else the context this driver sent.  Empty until a request
        #: carrying context completes.
        self.last_trace = ""
        #: Connections opened over the driver's lifetime (1 for an
        #: undisturbed keep-alive session; one per request without).
        self.connections_opened = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def peer(self) -> str:
        """The proxy address this driver targets, for log correlation."""
        return f"{self.host}:{self.port}"

    async def fetch(self, url: str, size: int = 0) -> bytes:
        """Fetch one URL through the proxy; returns the body."""
        ctx = (
            TraceContext(trace_id=_fresh_id(), span_id=_fresh_id())
            if self.send_trace
            else None
        )
        trace = format_id(ctx.trace_id) if ctx is not None else "-"
        start = time.perf_counter()
        logger.debug(
            "fetch start peer=%s url=%s trace=%s", self.peer, url, trace
        )
        try:
            response = await asyncio.wait_for(
                self._request(url, size, ctx), timeout=self.timeout
            )
        except asyncio.TimeoutError:
            await self.close()  # the connection is mid-exchange; drop it
            self.report.requests += 1
            self.report.errors += 1
            self.report.total_latency += time.perf_counter() - start
            logger.warning(
                "fetch timeout peer=%s url=%s trace=%s timeout=%.3fs",
                self.peer,
                url,
                trace,
                self.timeout,
            )
            raise ProxyError(
                f"proxy {self.peer} timed out after {self.timeout}s "
                f"for {url!r} (trace={trace})"
            ) from None
        elapsed = time.perf_counter() - start
        self.report.requests += 1
        self.report.total_latency += elapsed
        if response.status != 200:
            self.report.errors += 1
            logger.warning(
                "fetch error peer=%s url=%s trace=%s status=%d",
                self.peer,
                url,
                trace,
                response.status,
            )
            raise ProtocolError(
                f"proxy returned {response.status} for {url!r}"
            )
        echoed = TraceContext.parse(response.header(TRACE_HEADER, ""))
        if echoed is not None:
            self.last_trace = format_id(echoed.trace_id)
        elif ctx is not None:
            self.last_trace = format_id(ctx.trace_id)
        self.report.bytes_received += len(response.body)
        source = response.header("x-cache", "UNKNOWN")
        self.report.cache_sources[source] = (
            self.report.cache_sources.get(source, 0) + 1
        )
        return response.body

    async def _request(
        self, url: str, size: int, ctx: Optional[TraceContext] = None
    ) -> HttpResponse:
        """One request/response round trip (persistent or one-shot)."""
        headers = {"X-Size": str(size)} if size else {}
        if ctx is not None:
            headers[TRACE_HEADER] = ctx.header_value()
        if not self.keep_alive:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            self.connections_opened += 1
            try:
                write_request(writer, url, headers, keep_alive=False)
                await writer.drain()
                return await read_response(reader)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, asyncio.CancelledError):
                    pass
        # Keep-alive: ride the persistent connection; a proxy may close
        # it between requests (idle timeout, per-connection request
        # cap), so one transparent reconnect per request is allowed.
        for attempt in (0, 1):
            reused = self._writer is not None
            if self._writer is None or self._writer.is_closing():
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                self.connections_opened += 1
                reused = False
            assert self._reader is not None
            try:
                write_request(self._writer, url, headers, keep_alive=True)
                await self._writer.drain()
                response = await read_response(self._reader)
            except (ConnectionError, ProtocolError, OSError):
                await self.close()
                if reused and attempt == 0:
                    continue
                raise
            if not response.keep_alive:
                await self.close()
            return response
        raise ProxyError(
            f"proxy {self.peer} closed the connection twice for {url!r}"
        )  # pragma: no cover - loop returns or raises above

    async def rebind(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        keep_alive: bool = True,
    ) -> None:
        """Point this driver at a new proxy and reset per-phase state.

        Lets one driver per concurrent client survive across benchmark
        phases (fresh cluster, fresh ports) instead of being rebuilt
        each phase: the persistent connection is dropped, and the
        report / connection counters restart so each phase's numbers
        are its own.
        """
        await self.close()
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self.report = ReplayReport()
        self.connections_opened = 0
        self.last_trace = ""

    async def close(self) -> None:
        """Drop the persistent connection (next request reconnects)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass

    async def replay(self, requests: Sequence[Request]) -> ReplayReport:
        """Replay *requests* back-to-back; returns the accumulated report."""
        try:
            for req in requests:
                await self.fetch(req.url, size=req.size)
        finally:
            await self.close()
        return self.report


async def replay_concurrently(
    assignments: Sequence[Tuple["ClientDriver", Sequence[Request]]],
) -> ReplayReport:
    """Run several drivers' replays concurrently and merge their reports.

    Mirrors the benchmark's "client processes issue requests with no
    thinking time in between" -- each driver is serial, drivers run in
    parallel.
    """
    reports: List[ReplayReport] = await asyncio.gather(
        *(driver.replay(reqs) for driver, reqs in assignments)
    )
    merged = ReplayReport()
    for report in reports:
        merged = merged.merge(report)
    return merged
