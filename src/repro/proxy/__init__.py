"""An asyncio prototype of the summary-cache enhanced proxy (Section VI-B).

The prototype runs real sockets on localhost:

- :mod:`repro.proxy.origin` -- an origin HTTP server with configurable
  reply delay (the paper's benchmark servers "wait for one second before
  sending the reply to simulate the network latency");
- :mod:`repro.proxy.server` -- the proxy itself: a TCP HTTP front end, a
  UDP ICP endpoint, a local cache with a counting Bloom filter summary,
  and three cooperation modes (``no-icp``, ``icp``, ``sc-icp``);
- :mod:`repro.proxy.client` -- a trace-replaying client driver with a
  persistent keep-alive connection per driver;
- :mod:`repro.proxy.pool` -- health-checked connection pooling for
  origin and peer fetches;
- :mod:`repro.proxy.cluster` -- one-call construction of an
  origin + N proxies + clients experiment, used by the prototype
  benchmarks (Tables II, IV, V analogues) and the examples.

The HTTP spoken is a keep-alive streaming subset of HTTP/1.1 (GET
only, ``Content-Length``-framed, pipelined requests answered in
order, memoryview body streaming with write backpressure) -- enough to
push the data plane to benchmark scale without reimplementing an RFC
7230 stack.  See :mod:`repro.proxy.http` and
``docs/wire-protocol.md``.
"""

from repro.proxy.client import ClientDriver, ReplayReport
from repro.proxy.cluster import ClusterResult, ProxyCluster
from repro.proxy.config import PeerAddress, ProxyConfig, ProxyMode
from repro.proxy.eventloop import install_uvloop
from repro.proxy.origin import OriginServer
from repro.proxy.pool import ConnectionPool, PooledConnection, PoolStats
from repro.proxy.server import ProxyStats, SummaryCacheProxy

__all__ = [
    "ClientDriver",
    "ClusterResult",
    "ConnectionPool",
    "OriginServer",
    "PeerAddress",
    "PooledConnection",
    "PoolStats",
    "ProxyCluster",
    "ProxyConfig",
    "ProxyMode",
    "ProxyStats",
    "ReplayReport",
    "SummaryCacheProxy",
    "install_uvloop",
]
