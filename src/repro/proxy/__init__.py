"""An asyncio prototype of the summary-cache enhanced proxy (Section VI-B).

The prototype runs real sockets on localhost:

- :mod:`repro.proxy.origin` -- an origin HTTP server with configurable
  reply delay (the paper's benchmark servers "wait for one second before
  sending the reply to simulate the network latency");
- :mod:`repro.proxy.server` -- the proxy itself: a TCP HTTP front end, a
  UDP ICP endpoint, a local cache with a counting Bloom filter summary,
  and three cooperation modes (``no-icp``, ``icp``, ``sc-icp``);
- :mod:`repro.proxy.client` -- a trace-replaying client driver;
- :mod:`repro.proxy.cluster` -- one-call construction of an
  origin + N proxies + clients experiment, used by the prototype
  benchmarks (Tables II, IV, V analogues) and the examples.

The HTTP spoken is a deliberately small HTTP/1.0 subset (GET only, one
request per connection) -- enough to exercise the protocol paths the
paper measures without reimplementing an RFC 7230 stack.
"""

from repro.proxy.client import ClientDriver, ReplayReport
from repro.proxy.cluster import ClusterResult, ProxyCluster
from repro.proxy.config import PeerAddress, ProxyConfig, ProxyMode
from repro.proxy.origin import OriginServer
from repro.proxy.server import ProxyStats, SummaryCacheProxy

__all__ = [
    "ClientDriver",
    "ClusterResult",
    "OriginServer",
    "PeerAddress",
    "ProxyCluster",
    "ProxyConfig",
    "ProxyMode",
    "ProxyStats",
    "ReplayReport",
    "SummaryCacheProxy",
]
