"""Pytest integration: fail any test that produced sanitizer violations.

Loaded via ``pytest_plugins`` in the top-level ``tests/conftest.py``.
Inert unless ``SC_SANITIZE=1`` is in the environment -- then every
proxy the test constructs registers with the process-wide sanitizer
(:func:`repro.sanitizer.core.default_sanitizer`), and this hook drains
the violation list after each test call, erroring with the rendered
interleavings if any landed.  Draining per-test keeps attribution
tight: the violations reported belong to the test that just ran.
"""

from __future__ import annotations

from typing import Any, Iterator

import pytest

from repro.sanitizer.core import default_sanitizer


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item: Any) -> Iterator[None]:
    sanitizer = default_sanitizer()
    if sanitizer is not None:
        sanitizer.drain()  # violations from collection/fixtures: not ours
    yield
    if sanitizer is None:
        return
    violations = sanitizer.drain()
    if violations:
        lines = "\n".join(f"  {v.render()}" for v in violations)
        pytest.fail(
            f"{len(violations)} sanitizer violation(s) during "
            f"{item.nodeid}:\n{lines}",
            pytrace=False,
        )
