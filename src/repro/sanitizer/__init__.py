"""Runtime interleaving sanitizer for the proxy data plane.

The static rules (SC007..SC009) prove the *shape* of asyncio races;
this package catches the ones that actually happen.  It wraps the
proxy's shared mutable state -- :class:`~repro.summaries.backend.SummaryNode`,
:class:`~repro.placement.live.Placement`,
:class:`~repro.proxy.pool.ConnectionPool` -- in opt-in guard proxies
that record which task read and wrote what, in loop-global sequence
order.  A **violation** is the dynamic form of the SC007 window: task
A read a guarded object, a *different* task mutated it afterwards, and
A then wrote it anyway -- under cooperative scheduling that exact
sequence is only possible when A held its read across an ``await``.

Two activation paths:

- ``SC_SANITIZE=1`` in the environment (optionally with
  ``SC_SANITIZE_SEED=<int>``): every proxy constructed in the process
  wraps its shared state and registers with the process-wide sanitizer
  (:func:`default_sanitizer`).  The pytest plugin
  (``repro.sanitizer.pytest_plugin``) then fails any test that
  produced violations -- that is the CI ``sanitizer-smoke`` job.
- Programmatic: build a :class:`Sanitizer` and pass it to
  ``SummaryCacheProxy(sanitizer=...)``.

The sanitizer also *provokes* interleavings: guarded async operations
call :meth:`Sanitizer.perturb`, which inserts a seeded
``await asyncio.sleep(0)`` with probability ``rate`` -- deterministic
for a fixed seed, so a failing schedule replays.
"""

from repro.sanitizer.core import (
    ENV_FLAG,
    ENV_SEED,
    Sanitizer,
    Violation,
    default_sanitizer,
    sanitize_requested,
)
from repro.sanitizer.guards import (
    GuardedConnectionPool,
    GuardedPlacement,
    GuardedSummaryNode,
)

__all__ = [
    "ENV_FLAG",
    "ENV_SEED",
    "Sanitizer",
    "Violation",
    "default_sanitizer",
    "sanitize_requested",
    "GuardedConnectionPool",
    "GuardedPlacement",
    "GuardedSummaryNode",
]
