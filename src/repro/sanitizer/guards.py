"""Interleaving-check wrappers around the proxy's shared state.

Each guard delegates everything to the wrapped object and additionally
records reads and writes with the :class:`~repro.sanitizer.core.Sanitizer`.
Recording granularity is deliberate:

- ``Placement``: membership observations (``owner``/``replicas``/
  ``is_local``/``members``/``version``) are *reads* of the ring;
  ``add_member``/``remove_member`` are writes.  Immutable fields
  (``policy``, ``self_name``) are passed through unrecorded -- marking
  them as reads would re-arm a task's read marker and mask genuine
  staleness.
- ``SummaryNode``: the mutators (``on_insert``/``on_evict``/
  ``publish``/``rebuild``) are writes, ``due_for_update`` is the
  paired read.  Raw attribute access (``node.local`` for scrape
  gauges and encoding) stays unrecorded: telemetry reads are not
  check-then-act participants.
- ``ConnectionPool``: the pool serialises its own state between
  awaits, so the guard records nothing -- its value is the extra
  :meth:`~repro.sanitizer.core.Sanitizer.perturb` yield point at
  ``acquire``, exactly where a cancellation or slow connect changes
  the schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, List, Tuple

from repro.sanitizer.core import Sanitizer

if TYPE_CHECKING:  # imported for annotations only: repro.proxy imports
    # this package back, so runtime imports here would be circular.
    from repro.placement.live import Placement
    from repro.proxy.pool import (
        ConnectionPool,
        PooledConnection,
        PoolStats,
    )
    from repro.summaries.backend import SummaryNode


class GuardedSummaryNode:
    """A :class:`SummaryNode` whose mutators report to the sanitizer."""

    __slots__ = ("_inner", "_san", "_key")

    def __init__(
        self, inner: SummaryNode, sanitizer: Sanitizer, name: str
    ) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_san", sanitizer)
        object.__setattr__(self, "_key", f"{name}.summary")

    # Unrecorded passthrough: ``local``/``shipped`` and the update
    # counters are read by scrape gauges and encoders (telemetry).
    def __getattr__(self, attr: str) -> Any:
        return getattr(object.__getattribute__(self, "_inner"), attr)

    def __setattr__(self, attr: str, value: Any) -> None:
        setattr(object.__getattribute__(self, "_inner"), attr, value)

    def due_for_update(self, *args: Any, **kwargs: Any) -> bool:
        self._san.record_read(self._key, "due_for_update")
        return bool(self._inner.due_for_update(*args, **kwargs))

    def on_insert(self, url: str) -> None:
        self._san.record_write(self._key, "on_insert")
        self._inner.on_insert(url)

    def on_evict(self, url: str) -> None:
        self._san.record_write(self._key, "on_evict")
        self._inner.on_evict(url)

    def publish(self, *args: Any, **kwargs: Any) -> Any:
        self._san.record_write(self._key, "publish")
        return self._inner.publish(*args, **kwargs)

    def rebuild(self, *args: Any, **kwargs: Any) -> Any:
        self._san.record_write(self._key, "rebuild")
        return self._inner.rebuild(*args, **kwargs)


class GuardedPlacement:
    """A :class:`Placement` whose ring accesses report to the sanitizer."""

    __slots__ = ("_inner", "_san", "_key")

    def __init__(
        self, inner: Placement, sanitizer: Sanitizer, name: str
    ) -> None:
        self._inner = inner
        self._san = sanitizer
        self._key = f"{name}.placement"

    # -- unrecorded (immutable after construction) ---------------------

    @property
    def self_name(self) -> str:
        return self._inner.self_name

    @property
    def policy(self) -> Any:
        return self._inner.policy

    # -- recorded reads of the ring ------------------------------------

    @property
    def ring(self) -> Any:
        self._san.record_read(self._key, "ring")
        return self._inner.ring

    @property
    def members(self) -> Tuple[str, ...]:
        self._san.record_read(self._key, "members")
        return self._inner.members

    @property
    def version(self) -> int:
        self._san.record_read(self._key, "version")
        return self._inner.version

    def owner(self, digest: bytes) -> str:
        self._san.record_read(self._key, "owner")
        return self._inner.owner(digest)

    def replicas(self, digest: bytes) -> Tuple[str, ...]:
        self._san.record_read(self._key, "replicas")
        return self._inner.replicas(digest)

    def is_local(self, digest: bytes) -> bool:
        self._san.record_read(self._key, "is_local")
        return self._inner.is_local(digest)

    # -- recorded writes -----------------------------------------------

    def add_member(
        self, name: str, items: Iterable[Tuple[str, bytes]] = ()
    ) -> List[str]:
        self._san.record_write(self._key, "add_member")
        return self._inner.add_member(name, items)

    def remove_member(
        self, name: str, items: Iterable[Tuple[str, bytes]] = ()
    ) -> List[str]:
        self._san.record_write(self._key, "remove_member")
        return self._inner.remove_member(name, items)


class GuardedConnectionPool:
    """A :class:`ConnectionPool` with a perturbation point at acquire."""

    __slots__ = ("_inner", "_san", "_key")

    def __init__(
        self, inner: ConnectionPool, sanitizer: Sanitizer, name: str
    ) -> None:
        self._inner = inner
        self._san = sanitizer
        self._key = f"{name}.pool"

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)

    @property
    def stats(self) -> PoolStats:
        return self._inner.stats

    @property
    def total_idle(self) -> int:
        return self._inner.total_idle

    async def acquire(self, host: str, port: int) -> PooledConnection:
        # The extra yield lands exactly where a slow connect or a
        # cancellation would: between the caller's routing decision and
        # the exchange.
        await self._san.perturb("pool.acquire")
        return await self._inner.acquire(host, port)

    def release(
        self, conn: PooledConnection, reusable: bool = True
    ) -> None:
        self._inner.release(conn, reusable=reusable)

    async def close(self) -> None:
        await self._inner.close()
