"""The sanitizer core: sequencing, violation detection, perturbation.

All bookkeeping is synchronous and allocation-light: one global
sequence counter, one read marker per ``(object key, task)``, and the
last write per object key.  The detection rule mirrors SC007 exactly:

    task A reads K          -> marker (A, K, seq_r)
    task B writes K         -> last_write[K] = (B, seq_w), seq_w > seq_r
    task A writes K         -> VIOLATION: A's write acts on the value
                               it read before B's mutation

Under asyncio's cooperative model step 2 can only land between steps 1
and 3 if A awaited in between, so every violation is a real
interleaving window -- there are no false positives from parallelism
(there is no parallelism).  A fresh read re-arms the marker, which is
also how code *fixes* a window (re-validate after the await).
"""

from __future__ import annotations

import asyncio
import os
import random
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: Environment flag enabling the process-wide sanitizer.
ENV_FLAG = "SC_SANITIZE"
#: Environment override for the perturbation seed (default 0).
ENV_SEED = "SC_SANITIZE_SEED"
#: Environment override for the perturbation rate (default 0.5).
ENV_RATE = "SC_SANITIZE_RATE"

#: Trace attribution: the formatted trace id of the request the current
#: task is serving (set by the proxy when tracing and sanitizing are
#: both on), so a violation names the two traces that interleaved.
_trace_ctx: ContextVar[str] = ContextVar("sc_sanitize_trace", default="")


def _task_name() -> str:
    try:
        task = asyncio.current_task()
    except RuntimeError:
        task = None
    return task.get_name() if task is not None else "<no-task>"


@dataclass(frozen=True)
class Violation:
    """One detected interleaving: a stale read acted upon by a write."""

    #: Guarded object key, e.g. ``"proxy-0.placement"``.
    key: str
    #: The acting task (the one whose read went stale).
    task: str
    #: The operation that performed the stale read.
    read_op: str
    #: The foreign task whose mutation interleaved.
    interleaver: str
    #: The foreign mutation's operation name.
    interleaved_op: str
    #: The acting task's final write operation.
    write_op: str
    #: Global sequence numbers: read < interleaved < write.
    read_seq: int
    interleaved_seq: int
    write_seq: int
    #: Trace ids (8-hex or empty) of the acting / interleaving request.
    trace: str = ""
    interleaved_trace: str = ""

    def render(self) -> str:
        where = f" trace={self.trace}" if self.trace else ""
        other = (
            f" trace={self.interleaved_trace}"
            if self.interleaved_trace
            else ""
        )
        return (
            f"{self.key}: {self.task}{where} read via {self.read_op} "
            f"(seq {self.read_seq}), {self.interleaver}{other} wrote "
            f"via {self.interleaved_op} (seq {self.interleaved_seq}), "
            f"then {self.task} wrote via {self.write_op} "
            f"(seq {self.write_seq}) acting on the stale read"
        )


@dataclass
class _LastWrite:
    seq: int
    task: str
    op: str
    trace: str


class Sanitizer:
    """Owner-task tracking plus deterministic interleaving perturbation.

    Parameters
    ----------
    seed:
        Seed for the perturbation RNG; a fixed seed makes the inserted
        yields -- and therefore the explored schedule -- reproducible.
    rate:
        Probability that :meth:`perturb` actually yields.  ``0``
        disables perturbation (detection still runs).
    """

    def __init__(self, seed: int = 0, rate: float = 0.5) -> None:
        self.seed = seed
        self.rate = rate
        self.violations: List[Violation] = []
        self._rng = random.Random(seed)
        self._seq = 0
        #: ``(key, task) -> (seq, op, trace)`` -- the latest read.
        self._reads: Dict[Tuple[str, str], Tuple[int, str, str]] = {}
        self._last_write: Dict[str, _LastWrite] = {}
        self._listeners: List[Callable[[Violation], None]] = []
        #: Total perturbation yields actually inserted.
        self.yields = 0

    # -- wiring --------------------------------------------------------

    def add_listener(self, listener: Callable[[Violation], None]) -> None:
        """Call *listener* on every violation (metrics wiring)."""
        self._listeners.append(listener)

    def set_trace(self, trace: str) -> None:
        """Attribute the current task's accesses to *trace* (contextvar,
        so it follows the request through its awaits)."""
        _trace_ctx.set(trace)

    def begin_request(self, trace: str = "") -> None:
        """Open a fresh logical scope for the current task.

        Drops the task's read markers: a keep-alive handler task
        serves many requests back to back, and a read from request N
        paired with a write from request N+1 is serial request
        handling, not a check-then-act window.  Also records *trace*
        for attribution.
        """
        _trace_ctx.set(trace)
        task = _task_name()
        for key in [k for k in self._reads if k[1] == task]:
            del self._reads[key]

    # -- recording -----------------------------------------------------

    def record_read(self, key: str, op: str) -> None:
        """The current task observed *key* via *op*.

        Re-arms the task's read marker: a later read supersedes an
        earlier one, mirroring SC007's "a fresh direct read
        re-validates the window".
        """
        self._seq += 1
        self._reads[(key, _task_name())] = (
            self._seq, op, _trace_ctx.get()
        )

    def record_write(self, key: str, op: str) -> None:
        """The current task mutated *key* via *op*; detect staleness."""
        self._seq += 1
        seq = self._seq
        task = _task_name()
        trace = _trace_ctx.get()
        marker = self._reads.pop((key, task), None)
        last = self._last_write.get(key)
        if (
            marker is not None
            and last is not None
            and last.task != task
            and last.seq > marker[0]
        ):
            violation = Violation(
                key=key,
                task=task,
                read_op=marker[1],
                interleaver=last.task,
                interleaved_op=last.op,
                write_op=op,
                read_seq=marker[0],
                interleaved_seq=last.seq,
                write_seq=seq,
                trace=marker[2],
                interleaved_trace=last.trace,
            )
            self.violations.append(violation)
            for listener in self._listeners:
                listener(violation)
        self._last_write[key] = _LastWrite(
            seq=seq, task=task, op=op, trace=trace
        )

    # -- perturbation --------------------------------------------------

    async def perturb(self, label: str = "") -> None:
        """Maybe insert one extra yield point (seeded, deterministic).

        Guarded async operations call this so that schedules which
        *could* interleave, do -- the dynamic analogue of SC007
        assuming every await is a preemption point.
        """
        if self.rate > 0 and self._rng.random() < self.rate:
            self.yields += 1
            await asyncio.sleep(0)

    # -- reporting -----------------------------------------------------

    def drain(self) -> List[Violation]:
        """Return and clear the accumulated violations."""
        out = self.violations
        self.violations = []
        return out


# ----------------------------------------------------------------------
# Process-wide default (environment opt-in)
# ----------------------------------------------------------------------

_default: Optional[Sanitizer] = None


def sanitize_requested() -> bool:
    """Whether ``SC_SANITIZE`` asks for sanitizing in this process."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def default_sanitizer() -> Optional[Sanitizer]:
    """The process-wide sanitizer, created on first use when
    ``SC_SANITIZE=1`` (seed/rate from ``SC_SANITIZE_SEED`` /
    ``SC_SANITIZE_RATE``); ``None`` when sanitizing is off.

    Every proxy in the process shares this instance, so cross-proxy
    test suites aggregate violations in one place (the pytest plugin
    and ``summary-cache sanitize-run`` read it).
    """
    global _default
    if not sanitize_requested():
        return None
    if _default is None:
        seed = int(os.environ.get(ENV_SEED, "0") or "0")
        rate = float(os.environ.get(ENV_RATE, "0.5") or "0.5")
        _default = Sanitizer(seed=seed, rate=rate)
    return _default
