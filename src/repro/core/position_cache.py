"""A shared memo of MD5 digests and derived Bloom bit positions.

Every summary representation ultimately keys off the same computation:
the MD5 signature of a URL (Section V-B stores it verbatim; Section VI-A
slices it into hash-function outputs).  In a trace-driven simulation the
same URL is hashed over and over -- once per insert, once per evict, and
once per probe round -- and in an n-proxy cluster the *identical* slices
are recomputed at every peer.

:class:`HashPositionCache` memoizes, per key:

- the 16-byte MD5 **digest** (interned: the exact-directory summary, the
  wire codec, and the position derivation all share one ``bytes``
  object), and
- the derived **bit positions** per ``(num_functions, function_bits,
  array_size)`` geometry, so N proxies probing the same URL against
  same-shaped filters hash once, not N times.

The cache is bounded by an LRU over keys (a key's digest and all of its
per-geometry positions age out together) and is purely a memo: enabling
or disabling it never changes a simulation's outputs, only its speed.

A process-wide default cache is installed at import time;
:func:`set_position_cache` swaps it (``None`` disables memoization --
the benchmark baseline) and :func:`position_cache` scopes a swap to a
``with`` block.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ConfigurationError, KeyTypeError
from repro.obs.registry import MetricsRegistry, get_registry

Key = Union[str, bytes]

#: Geometry of one hash family applied to one table:
#: ``(num_functions, function_bits, table_size)``.
Geometry = Tuple[int, int, int]

#: Default LRU bound.  A cache line is a digest plus a few position
#: tuples (~200 bytes); 256 Ki lines bound the memo near 50 MB while
#: comfortably holding every distinct URL of the paper-scale workloads.
DEFAULT_MAX_ENTRIES = 1 << 18


def _as_bytes(key: Key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise KeyTypeError(f"keys must be str or bytes, not {type(key).__name__}")


def md5_stream(data: bytes, total_bits: int) -> int:
    """Return *total_bits* of MD5 output for *data* as one big integer.

    The first 128 bits are ``MD5(data)``; further 128-bit blocks come
    from ``MD5(data * 2)``, ``MD5(data * 3)``, ... per the paper's
    extension rule (Section VI-A).  This is the single implementation of
    the paper's bit-stream construction; :class:`~repro.core.hashing.
    MD5HashFamily` delegates here whether or not a cache is installed.
    """
    stream = 0
    produced = 0
    copies = 1
    while produced < total_bits:
        digest = hashlib.md5(data * copies).digest()
        stream |= int.from_bytes(digest, "big") << produced
        produced += 128
        copies += 1
    return stream


def positions_from_stream(
    stream: int, num_functions: int, function_bits: int, table_size: int
) -> Tuple[int, ...]:
    """Slice *stream* into ``num_functions`` bit positions mod *table_size*."""
    mask = (1 << function_bits) - 1
    return tuple(
        ((stream >> (i * function_bits)) & mask) % table_size
        for i in range(num_functions)
    )


class _Line:
    """One key's memoized hash products."""

    __slots__ = ("digest", "stream", "stream_bits", "positions")

    def __init__(self) -> None:
        self.digest: Optional[bytes] = None
        #: Widest bit stream derived so far, and how many bits it holds.
        self.stream: Optional[int] = None
        self.stream_bits = 0
        self.positions: Dict[Geometry, Tuple[int, ...]] = {}


class _CacheInstruments:
    """Registry handles bound once per cache while metrics are enabled."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.hits = registry.counter(
            "hash_cache_hits_total",
            "hash-position cache lookups answered from the memo",
        )
        self.misses = registry.counter(
            "hash_cache_misses_total",
            "hash-position cache lookups that computed MD5 products",
        )
        self.evictions = registry.counter(
            "hash_cache_evictions_total",
            "cache lines evicted by the LRU bound",
        )


class HashPositionCache:
    """LRU memo of MD5 digests and per-geometry bit positions.

    Parameters
    ----------
    max_entries:
        LRU bound on distinct keys.  Each key's digest and every
        geometry's positions live on one line and age out together.

    The cache is single-threaded by design (matching the registry and
    every simulator); worker processes of the parallel runner each hold
    their own instance.
    """

    __slots__ = (
        "_lines", "_max_entries", "hits", "misses", "evictions",
        "_obs", "_flushed_hits",
    )

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self._lines: "OrderedDict[Key, _Line]" = OrderedDict()
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = get_registry()
        self._obs: Optional[_CacheInstruments] = (
            _CacheInstruments(registry) if registry.enabled else None
        )
        #: Hits already pushed to the registry counter.  The hit path is
        #: the hottest loop in the simulator, so registry increments are
        #: batched: deltas flush on every miss and on :meth:`stats`.
        self._flushed_hits = 0

    # ------------------------------------------------------------------
    # Line management
    # ------------------------------------------------------------------

    def _flush_hits(self) -> None:
        if self._obs is not None and self.hits != self._flushed_hits:
            self._obs.hits.inc(self.hits - self._flushed_hits)
            self._flushed_hits = self.hits

    def _miss_line(self, key: Key) -> _Line:
        """Install a fresh line for *key*, counting the miss.

        Lines are keyed by the key object itself (``str`` or ``bytes``)
        so the hit path never re-encodes; a URL probed as ``str`` and as
        its UTF-8 ``bytes`` therefore occupies two lines, which only
        costs memory, never correctness.
        """
        self.misses += 1
        self._flush_hits()
        if self._obs is not None:
            self._obs.misses.inc()
        line = _Line()
        lines = self._lines
        lines[key] = line
        if len(lines) > self._max_entries:
            lines.popitem(last=False)
            self.evictions += 1
            if self._obs is not None:
                self._obs.evictions.inc()
        return line

    # ------------------------------------------------------------------
    # Memoized products
    # ------------------------------------------------------------------

    def digest(self, key: Key) -> bytes:
        """The interned 16-byte MD5 signature of *key*."""
        lines = self._lines
        line = lines.get(key)
        if line is not None:
            digest = line.digest
            if digest is not None:
                self.hits += 1
                lines.move_to_end(key)
                return digest
            # Line exists (positions were derived first) without a
            # digest: a miss for this product.
            self.misses += 1
            self._flush_hits()
            if self._obs is not None:
                self._obs.misses.inc()
        else:
            line = self._miss_line(key)
        line.digest = hashlib.md5(_as_bytes(key)).digest()
        return line.digest

    def seed_digest(self, key: Key, digest: bytes) -> None:
        """Install a known digest (e.g. one stored by the cache owner).

        Lets a rebuild path reuse digests computed at insert time even
        after the LRU aged the line out.
        """
        line = self._lines.get(key)
        if line is None:
            line = self._miss_line(key)
        if line.digest is None:
            line.digest = digest

    def _stream_for(self, data: bytes, line: _Line, total_bits: int) -> int:
        if line.stream is not None and line.stream_bits >= total_bits:
            return line.stream
        if total_bits <= 128 and line.digest is not None:
            # The first 128 stream bits are exactly the stored digest.
            stream = int.from_bytes(line.digest, "big")
            bits = 128
        else:
            stream = md5_stream(data, total_bits)
            bits = ((total_bits + 127) // 128) * 128
        line.stream = stream
        line.stream_bits = bits
        if line.digest is None and bits >= 128:
            line.digest = (stream & ((1 << 128) - 1)).to_bytes(16, "big")
        return stream

    def positions(
        self,
        key: Key,
        num_functions: int,
        function_bits: int,
        table_size: int,
    ) -> Tuple[int, ...]:
        """Bit positions of *key* under the given geometry, memoized."""
        lines = self._lines
        line = lines.get(key)
        if line is not None:
            cached = line.positions.get(
                (num_functions, function_bits, table_size)
            )
            if cached is not None:
                self.hits += 1
                lines.move_to_end(key)
                return cached
            self.misses += 1
            self._flush_hits()
            if self._obs is not None:
                self._obs.misses.inc()
        else:
            line = self._miss_line(key)
        stream = self._stream_for(
            _as_bytes(key), line, num_functions * function_bits
        )
        derived = positions_from_stream(
            stream, num_functions, function_bits, table_size
        )
        line.positions[(num_functions, function_bits, table_size)] = derived
        return derived

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def max_entries(self) -> int:
        """The LRU bound this cache was built with."""
        return self._max_entries

    def clear(self) -> None:
        """Drop every line (counters are preserved)."""
        self._lines.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counts and current size, as a plain dict.

        Also flushes any batched hit increments to the metrics registry.
        """
        self._flush_hits()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._lines),
            "max_entries": self._max_entries,
        }

    def __repr__(self) -> str:
        return (
            f"HashPositionCache(entries={len(self._lines)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


#: The process-wide default cache.  Installed at import time so every
#: hash family and summary benefits without plumbing; swap or disable it
#: with :func:`set_position_cache`.
_default_cache: Optional[HashPositionCache] = None


def get_position_cache() -> Optional[HashPositionCache]:
    """The process default cache, or ``None`` when memoization is off."""
    return _default_cache


def set_position_cache(
    cache: Optional[HashPositionCache],
) -> Optional[HashPositionCache]:
    """Install *cache* as the process default; returns the previous one.

    Passing ``None`` disables memoization entirely (every hash call
    recomputes MD5) -- the serial baseline the speedup benchmark
    measures against.
    """
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


@contextmanager
def position_cache(
    cache: Optional[HashPositionCache],
) -> Iterator[Optional[HashPositionCache]]:
    """Scope a default-cache swap to a ``with`` block."""
    previous = set_position_cache(cache)
    try:
        yield cache
    finally:
        set_position_cache(previous)


_default_cache = HashPositionCache()
