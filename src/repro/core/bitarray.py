"""Packed bit arrays and small-counter arrays.

Two storage primitives back the summary data structures:

- :class:`BitArray` -- the bit vector a Bloom filter summary ships to its
  peers (Section V-C).
- :class:`CounterArray` -- the per-bit counters a proxy keeps locally so
  its own filter supports deletions.  The paper argues 4-bit counters
  suffice ("4 bits per count would be amply sufficient") and that a
  saturated counter should simply stick at its maximum; both behaviours
  are implemented here.

Both classes pack their payload densely (``CounterArray`` packs two 4-bit
counters per byte) because the memory analysis of Table III depends on
the real footprint of each representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.errors import (
    BitIndexError,
    ConfigurationError,
    SummaryStateError,
)

try:
    _bit_count = int.bit_count  # Python >= 3.10: one CPython opcode
except AttributeError:  # pragma: no cover - exercised on 3.9 only
    def _bit_count(value: int) -> int:
        return bin(value).count("1")


class BitArray:
    """A fixed-size array of bits packed into a :class:`bytearray`."""

    __slots__ = ("_size", "_buf", "_popcount")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"BitArray size must be >= 1, got {size}")
        self._size = size
        self._buf = bytearray((size + 7) // 8)
        self._popcount = 0

    @property
    def size(self) -> int:
        """Number of bits in the array."""
        return self._size

    @property
    def popcount(self) -> int:
        """Number of bits currently set to 1 (maintained incrementally)."""
        return self._popcount

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set to 1."""
        return self._popcount / self._size

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._size:
            raise BitIndexError(
                f"bit index {index} out of range [0, {self._size})"
            )

    def get(self, index: int) -> bool:
        """Return the value of bit *index*."""
        self._check_index(index)
        return bool(self._buf[index >> 3] & (1 << (index & 7)))

    def set(self, index: int, value: bool = True) -> bool:
        """Set bit *index* to *value*; return ``True`` if the bit changed."""
        self._check_index(index)
        byte_index = index >> 3
        mask = 1 << (index & 7)
        old = bool(self._buf[byte_index] & mask)
        if old == bool(value):
            return False
        if value:
            self._buf[byte_index] |= mask
            self._popcount += 1
        else:
            self._buf[byte_index] &= ~mask & 0xFF
            self._popcount -= 1
        return True

    def clear(self, index: int) -> bool:
        """Clear bit *index*; return ``True`` if the bit changed."""
        return self.set(index, False)

    def set_many(self, indices: Iterable[int], value: bool = True) -> List[int]:
        """Set every bit in *indices* to *value*; return the changed ones.

        The batch form of :meth:`set`: popcount bookkeeping is settled
        once at the end instead of per bit, which is what a Bloom filter
        insert (k probes per key) spends most of its time on.
        """
        buf = self._buf
        size = self._size
        changed: List[int] = []
        append = changed.append
        if value:
            for index in indices:
                if not 0 <= index < size:
                    raise BitIndexError(
                        f"bit index {index} out of range [0, {size})"
                    )
                byte_index = index >> 3
                mask = 1 << (index & 7)
                if not buf[byte_index] & mask:
                    buf[byte_index] |= mask
                    append(index)
            self._popcount += len(changed)
        else:
            for index in indices:
                if not 0 <= index < size:
                    raise BitIndexError(
                        f"bit index {index} out of range [0, {size})"
                    )
                byte_index = index >> 3
                mask = 1 << (index & 7)
                if buf[byte_index] & mask:
                    buf[byte_index] &= ~mask & 0xFF
                    append(index)
            self._popcount -= len(changed)
        return changed

    def flipped_indices(self, other: "BitArray") -> List[Tuple[int, bool]]:
        """Positions where this array differs from *other*, as
        ``(index, value-in-self)`` records.

        One big-int XOR finds all differing bytes at C speed; only those
        are walked bit by bit.  This is the delta a summary owner ships
        when reconciling a peer copy against the live filter.
        """
        if self._size != other._size:
            raise ConfigurationError(
                f"cannot diff BitArrays of {self._size} and "
                f"{other._size} bits"
            )
        diff = int.from_bytes(self._buf, "little") ^ int.from_bytes(
            other._buf, "little"
        )
        mine = self._buf
        flips: List[Tuple[int, bool]] = []
        while diff:
            low = diff & -diff
            index = low.bit_length() - 1
            flips.append(
                (index, bool(mine[index >> 3] & (1 << (index & 7))))
            )
            diff ^= low
        return flips

    def reset(self) -> None:
        """Clear every bit."""
        self._buf = bytearray(len(self._buf))
        self._popcount = 0

    def iter_set_bits(self) -> Iterator[int]:
        """Yield the indices of all set bits in increasing order."""
        for byte_index, byte in enumerate(self._buf):
            if not byte:
                continue
            base = byte_index << 3
            while byte:
                low = byte & -byte
                yield base + low.bit_length() - 1
                byte ^= low

    def to_bytes(self) -> bytes:
        """Return the packed bit payload (little-endian bit order per byte)."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(cls, size: int, payload: bytes) -> "BitArray":
        """Rebuild an array of *size* bits from :meth:`to_bytes` output."""
        array = cls(size)
        expected = (size + 7) // 8
        if len(payload) != expected:
            raise ConfigurationError(
                f"payload of {len(payload)} bytes does not match "
                f"{size} bits ({expected} bytes expected)"
            )
        array._buf = bytearray(payload)
        # Mask stray bits beyond `size` in the final byte so popcount and
        # equality are well defined.
        tail_bits = size & 7
        if tail_bits:
            array._buf[-1] &= (1 << tail_bits) - 1
        array._popcount = _bit_count(int.from_bytes(array._buf, "little"))
        return array

    def copy(self) -> "BitArray":
        """Return an independent copy of this array."""
        clone = BitArray(self._size)
        clone._buf = bytearray(self._buf)
        clone._popcount = self._popcount
        return clone

    def size_bytes(self) -> int:
        """Memory footprint of the packed payload, in bytes."""
        return len(self._buf)

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._size == other._size and self._buf == other._buf

    def __repr__(self) -> str:
        return f"BitArray(size={self._size}, popcount={self._popcount})"


class CounterArray:
    """A fixed-size array of saturating counters packed *width* bits wide.

    The paper's counting Bloom filter keeps one counter per bit position.
    A counter that reaches its maximum value sticks there: "if the count
    ever exceeds 15, we can simply let it stay at 15".  Decrementing a
    saturated counter is therefore a no-op, trading an astronomically
    unlikely false negative for bounded memory.
    """

    __slots__ = ("_size", "_width", "_max", "_buf", "_saturated")

    #: Widths that pack evenly into bytes; arbitrary widths would
    #: complicate indexing for no experimental benefit.
    SUPPORTED_WIDTHS = (1, 2, 4, 8)

    def __init__(self, size: int, width: int = 4) -> None:
        if size < 1:
            raise ConfigurationError(f"CounterArray size must be >= 1, got {size}")
        if width not in self.SUPPORTED_WIDTHS:
            raise ConfigurationError(
                f"counter width must be one of {self.SUPPORTED_WIDTHS}, got {width}"
            )
        self._size = size
        self._width = width
        self._max = (1 << width) - 1
        per_byte = 8 // width
        self._buf = bytearray((size + per_byte - 1) // per_byte)
        self._saturated = 0

    @property
    def size(self) -> int:
        """Number of counters."""
        return self._size

    @property
    def width(self) -> int:
        """Width of each counter in bits."""
        return self._width

    @property
    def max_value(self) -> int:
        """Saturation value (``2**width - 1``)."""
        return self._max

    @property
    def saturation_events(self) -> int:
        """How many increments have hit the saturation ceiling.

        A nonzero value means the filter may eventually admit a false
        negative after enough deletions; the paper argues the probability
        is negligible for 4-bit counters, and this counter lets tests and
        benchmarks check that claim empirically.
        """
        return self._saturated

    def _locate(self, index: int) -> Tuple[int, int]:
        if not 0 <= index < self._size:
            raise BitIndexError(
                f"counter index {index} out of range [0, {self._size})"
            )
        per_byte = 8 // self._width
        byte_index = index // per_byte
        shift = (index % per_byte) * self._width
        return byte_index, shift

    def get(self, index: int) -> int:
        """Return the value of counter *index*."""
        byte_index, shift = self._locate(index)
        return (self._buf[byte_index] >> shift) & self._max

    def _put(self, index: int, value: int) -> None:
        byte_index, shift = self._locate(index)
        cleared = self._buf[byte_index] & ~(self._max << shift) & 0xFF
        self._buf[byte_index] = cleared | (value << shift)

    def increment(self, index: int) -> int:
        """Increment counter *index*, saturating at :attr:`max_value`.

        Returns the new counter value.
        """
        value = self.get(index)
        if value >= self._max:
            self._saturated += 1
            return value
        self._put(index, value + 1)
        return value + 1

    def decrement(self, index: int) -> int:
        """Decrement counter *index*.

        A saturated counter is left untouched (the paper's stick-at-max
        rule); a zero counter raises
        :class:`~repro.errors.SummaryStateError` because the
        caller tried to delete a key that was never inserted.

        Returns the new counter value.
        """
        value = self.get(index)
        if value == self._max:
            return value
        if value == 0:
            raise SummaryStateError(
                f"counter {index} underflow: decrement of a zero counter"
            )
        self._put(index, value - 1)
        return value - 1

    def nonzero_indices(self) -> List[int]:
        """Return indices of all counters with nonzero value."""
        return [i for i in range(self._size) if self.get(i) != 0]

    def load_from(self, values: Iterable[int]) -> None:
        """Bulk-load counter values (used when rebuilding after restart)."""
        for i, value in enumerate(values):
            if not 0 <= value <= self._max:
                raise ConfigurationError(
                    f"counter value {value} out of range [0, {self._max}]"
                )
            self._put(i, value)

    def size_bytes(self) -> int:
        """Memory footprint of the packed counters, in bytes."""
        return len(self._buf)

    def to_bytes(self) -> bytes:
        """Return the packed counter payload."""
        return bytes(self._buf)

    def load_bytes(self, payload: bytes) -> None:
        """Replace all counters with a packed payload from :meth:`to_bytes`.

        Saturation-event history is not part of the payload and resets
        to zero.
        """
        if len(payload) != len(self._buf):
            raise ConfigurationError(
                f"counter payload is {len(payload)} bytes, "
                f"expected {len(self._buf)}"
            )
        self._buf = bytearray(payload)
        self._saturated = 0

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"CounterArray(size={self._size}, width={self._width}, "
            f"saturation_events={self._saturated})"
        )
