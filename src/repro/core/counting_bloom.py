"""The counting Bloom filter: a proxy's local, deletion-capable summary.

This is the structure the paper introduced to the systems world
(Section V-C): alongside the bit array, the owning proxy keeps one small
counter per bit position recording how many cached documents hash to it.
Inserting a URL increments its counters; evicting it decrements them.
Only the 0 <-> 1 transitions flip bits in the public bit array, and each
flip is recorded so a delta update (``ICP_OP_DIRUPDATE``) can later be
assembled for peers.

The counters themselves never leave the proxy; peers receive only the bit
array (or bit-flip records).
"""

from __future__ import annotations

import struct
from time import perf_counter
from typing import Iterable, List, Optional, Tuple

from repro.core.bitarray import CounterArray
from repro.core.bloom import BloomFilter, _OP_BUCKETS
from repro.core.hashing import Key, MD5HashFamily
from repro.errors import ConfigurationError, ProtocolError, SummaryStateError
from repro.obs.registry import MetricsRegistry, get_registry


class _CountingInstruments:
    """Registry handles shared by every counting filter while enabled."""

    __slots__ = ("inserts", "deletes", "op_seconds")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.inserts = registry.counter(
            "counting_bloom_inserts_total",
            "keys inserted into counting filters",
        )
        self.deletes = registry.counter(
            "counting_bloom_deletes_total",
            "keys deleted from counting filters",
        )
        self.op_seconds = registry.histogram(
            "counting_bloom_op_seconds",
            "wall time of one insert or delete",
            buckets=_OP_BUCKETS,
        )


def _bind_instruments() -> Optional[_CountingInstruments]:
    """Instruments from the default registry; ``None`` when disabled."""
    registry = get_registry()
    if not registry.enabled:
        return None
    return _CountingInstruments(registry)

#: Magic prefix of the serialized filter format.
_MAGIC = b"SCBF"

#: Serialization format version.
_FORMAT_VERSION = 1

_HEADER = struct.Struct("!4sBBHHIi")

#: The paper's recommended counter width: "4 bits per count would be
#: amply sufficient."
DEFAULT_COUNTER_WIDTH = 4


class CountingBloomFilter:
    """A Bloom filter with per-bit saturating counters supporting deletion.

    Parameters
    ----------
    num_bits:
        Size of the bit vector / counter array.
    hash_family:
        Hash family shared with the shipped plain filter.
    counter_width:
        Bits per counter (1, 2, 4, or 8).  4 is the paper's choice; the
        counter-width ablation benchmark sweeps the others.
    """

    __slots__ = (
        "filter", "counters", "_pending_flips", "_keys_added", "_obs"
    )

    def __init__(
        self,
        num_bits: int,
        hash_family: Optional[MD5HashFamily] = None,
        counter_width: int = DEFAULT_COUNTER_WIDTH,
    ) -> None:
        self.filter = BloomFilter(num_bits, hash_family=hash_family)
        self.counters = CounterArray(num_bits, width=counter_width)
        self._obs = _bind_instruments()
        #: Bit flips since the last :meth:`drain_flips`, in occurrence
        #: order.  Later flips of the same bit supersede earlier ones;
        #: :meth:`drain_flips` coalesces them.
        self._pending_flips: List[Tuple[int, bool]] = []
        self._keys_added = 0

    @classmethod
    def for_capacity(
        cls,
        expected_keys: int,
        load_factor: int = 8,
        hash_family: Optional[MD5HashFamily] = None,
        counter_width: int = DEFAULT_COUNTER_WIDTH,
    ) -> "CountingBloomFilter":
        """Build a filter sized at ``load_factor`` bits per expected key."""
        if expected_keys < 1:
            raise ConfigurationError(
                f"expected_keys must be >= 1, got {expected_keys}"
            )
        if load_factor < 1:
            raise ConfigurationError(
                f"load_factor must be >= 1, got {load_factor}"
            )
        return cls(
            expected_keys * load_factor,
            hash_family=hash_family,
            counter_width=counter_width,
        )

    @property
    def num_bits(self) -> int:
        """Size of the bit vector in bits."""
        return self.filter.num_bits

    @property
    def hash_family(self) -> MD5HashFamily:
        """The hash family probing this filter."""
        return self.filter.hash_family

    @property
    def keys_added(self) -> int:
        """Net number of keys currently represented (adds minus removes)."""
        return self._keys_added

    def add(self, key: Key) -> None:
        """Insert *key*, recording any 0 -> 1 bit flips for the next delta."""
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        for pos in self.filter.positions(key):
            if self.counters.increment(pos) == 1:
                self.filter.bits.set(pos, True)
                self._pending_flips.append((pos, True))
        self._keys_added += 1
        if obs is not None:
            obs.op_seconds.observe(perf_counter() - start)
            obs.inserts.inc()

    def add_at(self, positions: Tuple[int, ...]) -> None:
        """Insert one key by its precomputed bit *positions*.

        The positions MUST come from this filter's own hash family and
        geometry (e.g. :meth:`MD5HashFamily.hashes_from_digest` over a
        digest stored at cache-insert time); anything else desynchronizes
        the filter from its peers' wire-spec positions.
        """
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        for pos in positions:
            if self.counters.increment(pos) == 1:
                self.filter.bits.set(pos, True)
                self._pending_flips.append((pos, True))
        self._keys_added += 1
        if obs is not None:
            obs.op_seconds.observe(perf_counter() - start)
            obs.inserts.inc()

    def add_many(self, keys: Iterable[Key]) -> None:
        """Insert every key in one batch (the rebuild/resync fast path).

        Equivalent to calling :meth:`add` per key -- same counters, same
        bit flips, same pending-delta records -- but instruments and
        attribute lookups are hoisted out of the loop.
        """
        keys = list(keys)
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        positions_of = self.filter.positions
        increment = self.counters.increment
        set_bit = self.filter.bits.set
        record = self._pending_flips.append
        for key in keys:
            for pos in positions_of(key):
                if increment(pos) == 1:
                    set_bit(pos, True)
                    record((pos, True))
        self._keys_added += len(keys)
        if obs is not None:
            obs.op_seconds.observe(perf_counter() - start)
            obs.inserts.inc(len(keys))

    def remove(self, key: Key) -> None:
        """Delete *key*, recording any 1 -> 0 bit flips for the next delta.

        Removing a key that was never added raises
        :class:`~repro.errors.SummaryStateError`
        (counter underflow) rather than silently corrupting the filter.
        """
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        positions = self.filter.positions(key)
        # Validate all counters before mutating any, so a bad remove
        # leaves the filter untouched.
        for pos in positions:
            if self.counters.get(pos) == 0:
                raise SummaryStateError(
                    f"remove of key not present in filter (counter {pos} is 0)"
                )
        for pos in positions:
            if self.counters.decrement(pos) == 0:
                self.filter.bits.set(pos, False)
                self._pending_flips.append((pos, False))
        self._keys_added -= 1
        if obs is not None:
            obs.op_seconds.observe(perf_counter() - start)
            obs.deletes.inc()

    def may_contain(self, key: Key) -> bool:
        """Membership probe against the local bit array."""
        return self.filter.may_contain(key)

    def __contains__(self, key: Key) -> bool:
        return self.may_contain(key)

    @property
    def pending_flip_count(self) -> int:
        """Number of uncoalesced bit-flip records awaiting the next delta."""
        return len(self._pending_flips)

    def peek_flips(self) -> List[Tuple[int, bool]]:
        """Return the coalesced pending flips without clearing them.

        Multiple flips of the same bit collapse to the latest value, and
        flips that restore a bit to its last-shipped state cancel out --
        exactly what a delta update message should carry.
        """
        final_value = {}
        first_value = {}
        order = []
        for index, value in self._pending_flips:
            if index not in final_value:
                order.append(index)
                first_value[index] = value
            final_value[index] = value
        coalesced = []
        for index in order:
            # The bit's pre-delta (last shipped) state is the opposite of
            # the first flip recorded for it; if the final value equals
            # that state, the net change is zero and nothing is shipped.
            shipped_state = not first_value[index]
            if final_value[index] != shipped_state:
                coalesced.append((index, final_value[index]))
        return coalesced

    def drain_flips(self) -> List[Tuple[int, bool]]:
        """Return the coalesced pending flips and clear the pending list."""
        flips = self.peek_flips()
        self._pending_flips.clear()
        return flips

    def snapshot(self) -> BloomFilter:
        """Return a plain-filter copy of the current bit array.

        This is what a whole-filter ('cache digest' style) update ships.
        """
        return self.filter.copy()

    def fill_ratio(self) -> float:
        """Fraction of bits set in the public bit array."""
        return self.filter.fill_ratio()

    def size_bytes(self) -> int:
        """Local footprint: bit array plus counters.

        Section V-F's extrapolation separates the two ("about 200 MB to
        represent all the summaries plus another 8 MB to represent its
        own counters"); :meth:`remote_size_bytes` gives the former per
        peer.
        """
        return self.filter.size_bytes() + self.counters.size_bytes()

    def remote_size_bytes(self) -> int:
        """Footprint of the shipped representation (bit array only)."""
        return self.filter.size_bytes()

    # ------------------------------------------------------------------
    # Persistence (warm restart)
    # ------------------------------------------------------------------
    #
    # The paper notes a saturated-counter false negative is less likely
    # than "the proxy server would be rebooted in the meantime and the
    # entire structure reconstructed."  Serializing the counters makes
    # the reboot cheap instead: the filter restarts warm and the first
    # post-restart update to peers is a small delta, not a full digest.

    def to_bytes(self) -> bytes:
        """Serialize the full filter state (counters included).

        Layout: a fixed header (magic, format version, counter width,
        hash spec, bit count, net key count) followed by the packed
        counter array.  The bit array is derived from the counters at
        load time, so it is not stored.
        """
        num, bits = self.hash_family.spec()
        header = _HEADER.pack(
            _MAGIC,
            _FORMAT_VERSION,
            self.counters.width,
            num,
            bits,
            self.num_bits,
            self._keys_added,
        )
        return header + self.counters.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "CountingBloomFilter":
        """Rebuild a filter from :meth:`to_bytes` output.

        Raises :class:`~repro.errors.ProtocolError` on a bad magic,
        unsupported format version, or truncated payload.
        """
        if len(data) < _HEADER.size:
            raise ProtocolError(
                f"serialized filter truncated: {len(data)} bytes"
            )
        magic, version, width, num, bits, num_bits, keys_added = (
            _HEADER.unpack_from(data)
        )
        if magic != _MAGIC:
            raise ProtocolError(f"bad magic {magic!r}")
        if version != _FORMAT_VERSION:
            raise ProtocolError(
                f"unsupported filter format version {version}"
            )
        filt = cls(
            num_bits,
            hash_family=MD5HashFamily.from_spec(num, bits),
            counter_width=width,
        )
        payload = data[_HEADER.size :]
        expected = filt.counters.size_bytes()
        if len(payload) != expected:
            raise ProtocolError(
                f"counter payload is {len(payload)} bytes, "
                f"expected {expected}"
            )
        filt.counters.load_bytes(payload)
        for index in filt.counters.nonzero_indices():
            filt.filter.bits.set(index, True)
        filt._keys_added = keys_added
        return filt

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(num_bits={self.num_bits}, "
            f"keys_added={self._keys_added}, "
            f"fill_ratio={self.fill_ratio():.4f}, "
            f"counter_width={self.counters.width})"
        )
