"""Compatibility shim: the summary layer moved to :mod:`repro.summaries`.

The representations compared in Section V (exact-directory,
server-name, Bloom) now live in the unified backend package shared by
the simulator, the wire protocol, and the live proxy.  This module
re-exports the public names so pre-refactor imports keep working for
one release; new code should import from :mod:`repro.summaries`.
"""

from repro.summaries.backend import (
    AVERAGE_DOCUMENT_SIZE,
    BitFlipDelta,
    DigestDelta,
    DigestSetRemote,
    LocalSummary,
    RemoteSummary,
    SummaryConfig,
    expected_documents_for_cache,
    make_local_summary,
)
from repro.summaries.bloom import BloomRemote, BloomSummary
from repro.summaries.exact import ExactDirectoryRemote, ExactDirectorySummary
from repro.summaries.servername import ServerNameRemote, ServerNameSummary

# The pre-refactor private name for the shared digest-set remote base.
_DigestSetRemote = DigestSetRemote

__all__ = [
    "AVERAGE_DOCUMENT_SIZE",
    "BitFlipDelta",
    "BloomRemote",
    "BloomSummary",
    "DigestDelta",
    "DigestSetRemote",
    "ExactDirectoryRemote",
    "ExactDirectorySummary",
    "LocalSummary",
    "RemoteSummary",
    "ServerNameRemote",
    "ServerNameSummary",
    "SummaryConfig",
    "expected_documents_for_cache",
    "make_local_summary",
]
