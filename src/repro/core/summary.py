"""The summary representations compared in Section V.

A *summary* is the compact stand-in for a peer's cache directory.  Each
representation comes in two halves:

- a **local summary**, maintained by the cache's owner as documents enter
  and leave, which can emit *deltas* (the changes since the last shipped
  update); and
- a **remote summary**, the possibly stale copy a peer holds, which can be
  probed and patched with deltas.

Three representations are implemented, exactly the ones the paper
evaluates:

============================  =====================================  =============================
Representation                Local state                            Shipped/remote state
============================  =====================================  =============================
:class:`ExactDirectorySummary`  set of 16-byte MD5 URL digests        same set (frozen)
:class:`ServerNameSummary`      refcounted set of server names        set of names (frozen)
:class:`BloomSummary`           counting Bloom filter                 plain Bloom filter
============================  =====================================  =============================

Delta sizes follow the paper's Fig. 8 accounting and are computed in
:mod:`repro.sharing.messages`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily, md5_digest
from repro.errors import ConfigurationError
from repro.urlutil import server_of

#: The paper's average-document-size divisor: "The average number of
#: documents is calculated by dividing the cache size by 8 K (the average
#: document size)."
AVERAGE_DOCUMENT_SIZE = 8 * 1024


@dataclass(frozen=True)
class SummaryConfig:
    """Parameters selecting and sizing a summary representation.

    Attributes
    ----------
    kind:
        ``"exact-directory"``, ``"server-name"``, or ``"bloom"``.
    load_factor:
        Bits per expected document for Bloom summaries (8/16/32 in the
        paper).  Ignored by the other representations.
    num_hashes:
        Hash functions for Bloom summaries (the paper uses 4).
    counter_width:
        Counter bits for the local counting filter (the paper uses 4).
    """

    kind: str = "bloom"
    load_factor: int = 8
    num_hashes: int = 4
    counter_width: int = 4

    KINDS = ("exact-directory", "server-name", "bloom")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigurationError(
                f"unknown summary kind {self.kind!r}; expected one of {self.KINDS}"
            )
        if self.load_factor < 1:
            raise ConfigurationError(
                f"load_factor must be >= 1, got {self.load_factor}"
            )
        if self.num_hashes < 1:
            raise ConfigurationError(
                f"num_hashes must be >= 1, got {self.num_hashes}"
            )

    def label(self) -> str:
        """Human-readable label matching the paper's figure legends."""
        if self.kind == "bloom":
            return f"bloom-{self.load_factor}"
        return self.kind


@dataclass
class DigestDelta:
    """Changes to a digest-set summary since the last shipped update."""

    added: List[bytes] = field(default_factory=list)
    removed: List[bytes] = field(default_factory=list)

    @property
    def change_count(self) -> int:
        """Number of 16-byte change records the update carries."""
        return len(self.added) + len(self.removed)

    def is_empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class BitFlipDelta:
    """Absolute bit set/clear records for a Bloom summary update."""

    flips: List[Tuple[int, bool]] = field(default_factory=list)

    @property
    def change_count(self) -> int:
        """Number of 32-bit flip records the update carries."""
        return len(self.flips)

    def is_empty(self) -> bool:
        return not self.flips


class RemoteSummary(ABC):
    """A peer's (possibly stale) view of another proxy's directory.

    Probing twice: :meth:`may_contain` is the convenient form;
    :meth:`key_of` + :meth:`contains_key` split the (potentially
    expensive) key derivation from the probe so a simulator checking
    one URL against many peer summaries hashes it once.
    """

    @abstractmethod
    def may_contain(self, url: str) -> bool:
        """Probe the summary; a ``False`` is authoritative for this copy."""

    @abstractmethod
    def key_of(self, url: str):
        """Derive the probe key for *url* (digest, name, or positions)."""

    @abstractmethod
    def contains_key(self, key) -> bool:
        """Probe with a key previously derived by :meth:`key_of`."""

    @abstractmethod
    def apply_delta(self, delta) -> None:
        """Patch the copy with a received delta update."""

    @abstractmethod
    def size_bytes(self) -> int:
        """DRAM footprint of this copy at the peer."""


class LocalSummary(ABC):
    """The summary a proxy maintains for its own cache."""

    @abstractmethod
    def add(self, url: str) -> None:
        """Record that *url* entered the cache."""

    @abstractmethod
    def remove(self, url: str) -> None:
        """Record that *url* left the cache."""

    @abstractmethod
    def may_contain(self, url: str) -> bool:
        """Probe the up-to-date local summary."""

    @abstractmethod
    def key_of(self, url: str):
        """Derive the probe key for *url* (digest, name, or positions)."""

    @abstractmethod
    def contains_key(self, key) -> bool:
        """Probe with a key previously derived by :meth:`key_of`."""

    @abstractmethod
    def drain_delta(self):
        """Return changes since the last drain and mark them shipped."""

    @abstractmethod
    def pending_change_count(self) -> int:
        """How many change records the next delta would carry."""

    @abstractmethod
    def export(self) -> RemoteSummary:
        """Return a fresh remote copy reflecting the current directory."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Local DRAM footprint (including any counters)."""

    @abstractmethod
    def remote_size_bytes(self) -> int:
        """DRAM footprint of the shipped representation at one peer."""


class _DigestSetRemote(RemoteSummary):
    """Remote half shared by the exact-directory and server-name forms."""

    __slots__ = ("_digests", "_bytes_per_entry")

    def __init__(self, digests: set, bytes_per_entry: int) -> None:
        self._digests = set(digests)
        self._bytes_per_entry = bytes_per_entry

    def _key(self, url: str) -> bytes:
        raise NotImplementedError

    def may_contain(self, url: str) -> bool:
        return self._key(url) in self._digests

    def key_of(self, url: str):
        return self._key(url)

    def contains_key(self, key) -> bool:
        return key in self._digests

    def apply_delta(self, delta: DigestDelta) -> None:
        for digest in delta.removed:
            self._digests.discard(digest)
        for digest in delta.added:
            self._digests.add(digest)

    def size_bytes(self) -> int:
        return len(self._digests) * self._bytes_per_entry

    def __len__(self) -> int:
        return len(self._digests)


class ExactDirectoryRemote(_DigestSetRemote):
    """Peer copy of an exact directory: a set of MD5 URL digests."""

    def __init__(self, digests: set) -> None:
        super().__init__(digests, bytes_per_entry=16)

    def _key(self, url: str) -> bytes:
        return md5_digest(url)


class ServerNameRemote(_DigestSetRemote):
    """Peer copy of a server-name summary: a set of host names.

    The paper sizes each entry at 16 bytes for the message-byte estimate;
    we use the same figure for the stored form so Table III is
    regenerated with the paper's own assumptions.
    """

    def __init__(self, names: set) -> None:
        super().__init__(names, bytes_per_entry=16)

    def _key(self, url: str) -> str:  # type: ignore[override]
        return server_of(url)


class ExactDirectorySummary(LocalSummary):
    """Local exact directory: every cached URL's 16-byte MD5 signature."""

    def __init__(self) -> None:
        self._digests: set = set()
        self._pending_added: set = set()
        self._pending_removed: set = set()

    def add(self, url: str) -> None:
        digest = md5_digest(url)
        if digest in self._digests:
            return
        self._digests.add(digest)
        if digest in self._pending_removed:
            self._pending_removed.discard(digest)
        else:
            self._pending_added.add(digest)

    def remove(self, url: str) -> None:
        digest = md5_digest(url)
        if digest not in self._digests:
            raise ValueError(f"remove of URL not in directory: {url!r}")
        self._digests.discard(digest)
        if digest in self._pending_added:
            self._pending_added.discard(digest)
        else:
            self._pending_removed.add(digest)

    def may_contain(self, url: str) -> bool:
        return md5_digest(url) in self._digests

    def key_of(self, url: str):
        return md5_digest(url)

    def contains_key(self, key) -> bool:
        return key in self._digests

    def drain_delta(self) -> DigestDelta:
        delta = DigestDelta(
            added=sorted(self._pending_added),
            removed=sorted(self._pending_removed),
        )
        self._pending_added = set()
        self._pending_removed = set()
        return delta

    def pending_change_count(self) -> int:
        return len(self._pending_added) + len(self._pending_removed)

    def export(self) -> ExactDirectoryRemote:
        return ExactDirectoryRemote(self._digests)

    def size_bytes(self) -> int:
        return len(self._digests) * 16

    def remote_size_bytes(self) -> int:
        return len(self._digests) * 16

    def __len__(self) -> int:
        return len(self._digests)


class ServerNameSummary(LocalSummary):
    """Local server-name summary: refcounted host names of cached URLs."""

    def __init__(self) -> None:
        self._refcounts: Dict[str, int] = {}
        self._pending_added: set = set()
        self._pending_removed: set = set()

    def add(self, url: str) -> None:
        name = server_of(url)
        count = self._refcounts.get(name, 0)
        self._refcounts[name] = count + 1
        if count == 0:
            if name in self._pending_removed:
                self._pending_removed.discard(name)
            else:
                self._pending_added.add(name)

    def remove(self, url: str) -> None:
        name = server_of(url)
        count = self._refcounts.get(name, 0)
        if count == 0:
            raise ValueError(f"remove of URL with unknown server: {url!r}")
        if count == 1:
            del self._refcounts[name]
            if name in self._pending_added:
                self._pending_added.discard(name)
            else:
                self._pending_removed.add(name)
        else:
            self._refcounts[name] = count - 1

    def may_contain(self, url: str) -> bool:
        return server_of(url) in self._refcounts

    def key_of(self, url: str):
        return server_of(url)

    def contains_key(self, key) -> bool:
        return key in self._refcounts

    def drain_delta(self) -> DigestDelta:
        delta = DigestDelta(
            added=sorted(self._pending_added),
            removed=sorted(self._pending_removed),
        )
        self._pending_added = set()
        self._pending_removed = set()
        return delta

    def pending_change_count(self) -> int:
        return len(self._pending_added) + len(self._pending_removed)

    def export(self) -> ServerNameRemote:
        return ServerNameRemote(set(self._refcounts))

    def size_bytes(self) -> int:
        return len(self._refcounts) * 16

    def remote_size_bytes(self) -> int:
        return len(self._refcounts) * 16

    def __len__(self) -> int:
        return len(self._refcounts)


class BloomRemote(RemoteSummary):
    """Peer copy of a Bloom summary: a plain bit array plus hash spec."""

    __slots__ = ("filter",)

    def __init__(self, filt: BloomFilter) -> None:
        self.filter = filt

    def may_contain(self, url: str) -> bool:
        return self.filter.may_contain(url)

    def key_of(self, url: str):
        return self.filter.positions(url)

    def contains_key(self, key) -> bool:
        get = self.filter.bits.get
        for pos in key:
            if not get(pos):
                return False
        return True

    def apply_delta(self, delta: BitFlipDelta) -> None:
        self.filter.apply_flips(delta.flips)

    def size_bytes(self) -> int:
        return self.filter.size_bytes()


class BloomSummary(LocalSummary):
    """Local Bloom summary: a counting Bloom filter sized by load factor.

    Parameters
    ----------
    expected_documents:
        Sizing basis -- cache size / 8 KB in the paper's configurations
        (use :func:`expected_documents_for_cache` for that calculation).
    config:
        Load factor, hash count, and counter width.
    """

    def __init__(
        self,
        expected_documents: int,
        config: Optional[SummaryConfig] = None,
    ) -> None:
        cfg = config or SummaryConfig()
        if cfg.kind != "bloom":
            raise ConfigurationError(
                f"BloomSummary requires kind='bloom', got {cfg.kind!r}"
            )
        family = MD5HashFamily(num_functions=cfg.num_hashes)
        self.config = cfg
        self._cbf = CountingBloomFilter.for_capacity(
            expected_documents,
            load_factor=cfg.load_factor,
            hash_family=family,
            counter_width=cfg.counter_width,
        )

    @property
    def num_bits(self) -> int:
        """Bit array size (``BitArray_Size_InBits`` on the wire)."""
        return self._cbf.num_bits

    @property
    def counting_filter(self) -> CountingBloomFilter:
        """The underlying counting filter (for protocol integration)."""
        return self._cbf

    def add(self, url: str) -> None:
        self._cbf.add(url)

    def remove(self, url: str) -> None:
        self._cbf.remove(url)

    def may_contain(self, url: str) -> bool:
        return self._cbf.may_contain(url)

    def key_of(self, url: str):
        return self._cbf.filter.positions(url)

    def contains_key(self, key) -> bool:
        get = self._cbf.filter.bits.get
        for pos in key:
            if not get(pos):
                return False
        return True

    def drain_delta(self) -> BitFlipDelta:
        return BitFlipDelta(flips=self._cbf.drain_flips())

    def pending_change_count(self) -> int:
        return self._cbf.pending_flip_count

    def export(self) -> BloomRemote:
        return BloomRemote(self._cbf.snapshot())

    def size_bytes(self) -> int:
        return self._cbf.size_bytes()

    def remote_size_bytes(self) -> int:
        return self._cbf.remote_size_bytes()

    def __len__(self) -> int:
        return self._cbf.keys_added


def expected_documents_for_cache(
    cache_size_bytes: int, doc_size: int = AVERAGE_DOCUMENT_SIZE
) -> int:
    """Expected document count for a cache: size / average document size.

    The paper's rule divides by 8 KB; pass a workload-derived *doc_size*
    (e.g. the trace's mean cacheable document size) when the workload's
    average differs, otherwise the filter is mis-sized and the false-hit
    ratio drifts from the nominal load factor's.
    """
    if cache_size_bytes < 1:
        raise ConfigurationError(
            f"cache_size_bytes must be >= 1, got {cache_size_bytes}"
        )
    if doc_size < 1:
        raise ConfigurationError(f"doc_size must be >= 1, got {doc_size}")
    return max(1, cache_size_bytes // doc_size)


def make_local_summary(
    config: SummaryConfig,
    cache_size_bytes: int,
    doc_size: int = AVERAGE_DOCUMENT_SIZE,
) -> LocalSummary:
    """Construct the local summary named by *config* for a cache of the given size."""
    if config.kind == "exact-directory":
        return ExactDirectorySummary()
    if config.kind == "server-name":
        return ServerNameSummary()
    return BloomSummary(
        expected_documents_for_cache(cache_size_bytes, doc_size),
        config=config,
    )
