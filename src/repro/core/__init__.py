"""Core data structures of the summary cache protocol.

This subpackage contains the paper's primary algorithmic contribution:

- :mod:`repro.core.hashing` -- the MD5-slice hash family of Section VI-A,
  which derives ``Function_Num`` hash functions of ``Function_Bits`` bits
  each from the MD5 signature of a URL.
- :mod:`repro.core.bitarray` -- packed bit and small-counter arrays.
- :mod:`repro.core.bloom` -- the plain Bloom filter used as the shipped
  summary representation.
- :mod:`repro.core.counting_bloom` -- the counting Bloom filter (4-bit
  saturating counters) that lets a proxy maintain its own summary under
  both insertions and deletions (Section V-C).
- :mod:`repro.core.bfmath` -- the analytic false-positive and
  counter-overflow formulas behind Fig. 4.
- :mod:`repro.core.summary` -- the three summary representations compared
  in Section V (exact-directory, server-name, Bloom filter).
- :mod:`repro.core.position_cache` -- the shared LRU memo of MD5 digests
  and derived bit positions that lets N proxies probing the same URL
  hash once instead of N times (see ``docs/performance.md``).
"""

from repro.core.bfmath import (
    false_positive_probability,
    false_positive_probability_exact,
    min_false_positive_probability,
    optimal_num_hashes,
    counter_overflow_probability,
)
from repro.core.bitarray import BitArray, CounterArray
from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily, PolynomialHashFamily, md5_digest
from repro.core.position_cache import (
    HashPositionCache,
    get_position_cache,
    position_cache,
    set_position_cache,
)
from repro.core.summary import (
    BloomSummary,
    DigestDelta,
    ExactDirectorySummary,
    ServerNameSummary,
    SummaryConfig,
    make_local_summary,
)

__all__ = [
    "BitArray",
    "BloomFilter",
    "BloomSummary",
    "CounterArray",
    "CountingBloomFilter",
    "DigestDelta",
    "ExactDirectorySummary",
    "HashPositionCache",
    "MD5HashFamily",
    "PolynomialHashFamily",
    "ServerNameSummary",
    "SummaryConfig",
    "counter_overflow_probability",
    "false_positive_probability",
    "false_positive_probability_exact",
    "get_position_cache",
    "make_local_summary",
    "md5_digest",
    "min_false_positive_probability",
    "optimal_num_hashes",
    "position_cache",
    "set_position_cache",
]
