"""Analytic Bloom filter mathematics (Section V-C, Fig. 4).

The paper derives:

- the exact false-positive probability after inserting ``n`` keys into
  ``m`` bits with ``k`` hash functions::

      p = (1 - (1 - 1/m)**(k*n))**k

- its standard approximation ``(1 - e**(-k*n/m))**k``;
- the optimum ``k = ln 2 * (m/n)``, at which ``p = 0.6185**(m/n)``;
- the probability that any counter in a counting Bloom filter reaches a
  value >= j, bounded (for the optimal k) by ``m * (e * ln 2 / j)**j``,
  which for j = 16 (4-bit counters) is "minuscule".

These functions regenerate the Fig. 4 curves and the example-values table
(k = 4 vs the optimal integral k), and back the scalability
extrapolation of Section V-F.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def _validate_mnk(m: int, n: int, k: int) -> None:
    if m < 1:
        raise ConfigurationError(f"m (bits) must be >= 1, got {m}")
    if n < 0:
        raise ConfigurationError(f"n (keys) must be >= 0, got {n}")
    if k < 1:
        raise ConfigurationError(f"k (hash functions) must be >= 1, got {k}")


def false_positive_probability_exact(m: int, n: int, k: int) -> float:
    """Exact false-positive probability: ``(1 - (1 - 1/m)**(k*n))**k``."""
    _validate_mnk(m, n, k)
    if n == 0:
        return 0.0
    return (1.0 - (1.0 - 1.0 / m) ** (k * n)) ** k


def false_positive_probability(
    bits_per_entry: float, num_hashes: int
) -> float:
    """Asymptotic false-positive probability ``(1 - e**(-k/(m/n)))**k``.

    Parameterized by the load factor ``m/n`` (bits per entry), which is
    how Fig. 4's x-axis is expressed.
    """
    if bits_per_entry <= 0:
        raise ConfigurationError(
            f"bits_per_entry must be > 0, got {bits_per_entry}"
        )
    if num_hashes < 1:
        raise ConfigurationError(
            f"num_hashes must be >= 1, got {num_hashes}"
        )
    return (1.0 - math.exp(-num_hashes / bits_per_entry)) ** num_hashes


def optimal_num_hashes(bits_per_entry: float) -> float:
    """The real-valued optimum ``k = ln 2 * (m/n)``."""
    if bits_per_entry <= 0:
        raise ConfigurationError(
            f"bits_per_entry must be > 0, got {bits_per_entry}"
        )
    return math.log(2.0) * bits_per_entry


def optimal_integer_num_hashes(bits_per_entry: float) -> int:
    """The integral k minimizing the false-positive probability.

    The paper notes "in fact k must be an integer"; the best integer is
    one of the two nearest the real optimum.
    """
    opt = optimal_num_hashes(bits_per_entry)
    candidates = {max(1, math.floor(opt)), max(1, math.ceil(opt))}
    return min(
        candidates,
        key=lambda k: false_positive_probability(bits_per_entry, k),
    )


def min_false_positive_probability(bits_per_entry: float) -> float:
    """False-positive probability at the real-valued optimal k: ``0.6185**(m/n)``.

    (``(1/2)**(ln 2 * m/n)`` = ``0.6185...**(m/n)``.)
    """
    if bits_per_entry <= 0:
        raise ConfigurationError(
            f"bits_per_entry must be > 0, got {bits_per_entry}"
        )
    return 0.5 ** (math.log(2.0) * bits_per_entry)


def counter_overflow_probability(m: int, n: int, j: int) -> float:
    """Upper bound on Pr[any counter >= j] after n insertions into m counters.

    The paper states (for ``k <= m/n * ln 2`` hash functions)::

        Pr(max count >= j) <= m * (e * ln 2 / j)**j

    For 4-bit counters (j = 16) and practical m this is ~1e-15 * m --
    the basis for the "amply sufficient" claim.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if j < 1:
        raise ConfigurationError(f"j must be >= 1, got {j}")
    if n == 0:
        return 0.0
    bound = m * (math.e * math.log(2.0) / j) ** j
    return min(1.0, bound)


def expected_maximum_counter(m: int, n: int, k: int) -> float:
    """Asymptotic expected maximum counter value, ``Theta(ln m / ln ln m)``.

    Returns the leading-order term ``ln(m) / ln(ln(m))`` (the paper cites
    the classical balls-in-bins result); useful only as a sanity scale,
    not a tight estimate.
    """
    _validate_mnk(m, n, k)
    if m <= math.e:
        return 1.0
    return math.log(m) / math.log(math.log(m))


#: Rows of the example-values table in Section V-C: (m/n, k, false-positive
#: probability) for selected configurations the paper tabulates.
EXAMPLE_TABLE_LOAD_FACTORS: Sequence[int] = (4, 6, 8, 10, 12, 16, 24, 32)


def example_table(
    load_factors: Sequence[int] = EXAMPLE_TABLE_LOAD_FACTORS,
) -> List[Tuple[int, int, float, int, float]]:
    """Return ``(m/n, 4, p_k4, k_opt, p_opt)`` rows for the example table.

    Each row compares the paper's fixed choice of four hash functions with
    the optimal integral choice, mirroring the two curves of Fig. 4.
    """
    rows = []
    for lf in load_factors:
        p4 = false_positive_probability(lf, 4)
        k_opt = optimal_integer_num_hashes(lf)
        p_opt = false_positive_probability(lf, k_opt)
        rows.append((lf, 4, p4, k_opt, p_opt))
    return rows


def fig4_series(
    min_bits_per_entry: int = 2, max_bits_per_entry: int = 32
) -> Tuple[List[int], List[float], List[float]]:
    """Return Fig. 4's two series.

    Returns ``(bits_per_entry, p_with_4_hashes, p_with_optimal_k)``
    over the integer range of the x-axis.
    """
    if min_bits_per_entry < 1 or max_bits_per_entry < min_bits_per_entry:
        raise ConfigurationError(
            "invalid bits-per-entry range "
            f"[{min_bits_per_entry}, {max_bits_per_entry}]"
        )
    xs = list(range(min_bits_per_entry, max_bits_per_entry + 1))
    top = [false_positive_probability(x, 4) for x in xs]
    bottom = [
        false_positive_probability(x, optimal_integer_num_hashes(x))
        for x in xs
    ]
    return xs, top, bottom
