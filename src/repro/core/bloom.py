"""The plain Bloom filter: the shipped form of a cache summary.

A peer proxy holds one :class:`BloomFilter` per neighbour, rebuilt from
``ICP_OP_DIRUPDATE`` messages.  Because a remote copy is only ever probed
and patched (bits set or cleared by absolute index, per the loss-tolerant
update design of Section VI-A), the plain filter carries no counters --
those live only in the owning proxy's :class:`~repro.core.counting_bloom.
CountingBloomFilter`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, List, Optional, Tuple

from repro.core.bitarray import BitArray
from repro.core.hashing import Key, MD5HashFamily
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, get_registry

#: Histogram bounds for single filter operations (sub-us .. 1 ms).
_OP_BUCKETS = (1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 1e-3)


class _BloomInstruments:
    """Registry handles shared by every filter built while enabled."""

    __slots__ = ("probes", "probe_positives", "inserts", "op_seconds")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.probes = registry.counter(
            "bloom_probes_total", "membership probes against plain filters"
        )
        self.probe_positives = registry.counter(
            "bloom_probe_positives_total",
            "probes answering 'may be present'",
        )
        self.inserts = registry.counter(
            "bloom_inserts_total", "keys inserted into plain filters"
        )
        self.op_seconds = registry.histogram(
            "bloom_op_seconds",
            "wall time of one probe or insert",
            buckets=_OP_BUCKETS,
        )


def _bind_instruments() -> Optional[_BloomInstruments]:
    """Instruments from the default registry; ``None`` when disabled.

    Binding happens at filter construction, so the steady-state cost of
    disabled metrics is a single ``is None`` test per operation -- the
    tier-1 microbenchmark budget (<2%) allows nothing more.
    """
    registry = get_registry()
    if not registry.enabled:
        return None
    return _BloomInstruments(registry)


class BloomFilter:
    """A Bloom filter over a bit array of ``num_bits`` bits.

    Parameters
    ----------
    num_bits:
        Size of the bit vector (``BitArray_Size_InBits`` on the wire).
    hash_family:
        Object providing ``hashes(key, table_size) -> tuple[int, ...]``.
        Defaults to the paper's 4-function MD5-slice family.

    The filter answers :meth:`may_contain` with no false negatives (for
    keys actually inserted via :meth:`add` and never removed) and a false
    positive probability governed by the load factor; see
    :mod:`repro.core.bfmath`.
    """

    __slots__ = ("bits", "hash_family", "_obs")

    def __init__(
        self,
        num_bits: int,
        hash_family: Optional[MD5HashFamily] = None,
    ) -> None:
        if num_bits < 1:
            raise ConfigurationError(f"num_bits must be >= 1, got {num_bits}")
        self.bits = BitArray(num_bits)
        self.hash_family = hash_family or MD5HashFamily()
        self._obs = _bind_instruments()

    @classmethod
    def for_capacity(
        cls,
        expected_keys: int,
        load_factor: int = 8,
        hash_family: Optional[MD5HashFamily] = None,
    ) -> "BloomFilter":
        """Build a filter sized at ``load_factor`` bits per expected key.

        The paper's configurations use load factors 8, 16, and 32 with
        four hash functions (Section V-D).
        """
        if expected_keys < 1:
            raise ConfigurationError(
                f"expected_keys must be >= 1, got {expected_keys}"
            )
        if load_factor < 1:
            raise ConfigurationError(
                f"load_factor must be >= 1, got {load_factor}"
            )
        return cls(expected_keys * load_factor, hash_family=hash_family)

    @property
    def num_bits(self) -> int:
        """Size of the bit vector in bits."""
        return self.bits.size

    def positions(self, key: Key) -> Tuple[int, ...]:
        """Return the bit positions probed for *key*."""
        return self.hash_family.hashes(key, self.bits.size)

    def add(self, key: Key) -> List[int]:
        """Insert *key*; return the indices of bits that flipped 0 -> 1."""
        obs = self._obs
        if obs is None:
            return self.bits.set_many(self.positions(key))
        start = perf_counter()
        flipped = self.bits.set_many(self.positions(key))
        obs.op_seconds.observe(perf_counter() - start)
        obs.inserts.inc()
        return flipped

    def add_many(self, keys: Iterable[Key]) -> List[int]:
        """Insert every key in one batch; return all bits flipped 0 -> 1.

        The batch form of :meth:`add`: every key's positions are set via
        a single :meth:`~repro.core.bitarray.BitArray.set_many` sweep, so
        per-key popcount bookkeeping and instrument checks disappear from
        the hot path.  Used by rebuild/resync and batched trace replay.
        """
        keys = list(keys)
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        positions = self.positions
        flipped = self.bits.set_many(
            pos for key in keys for pos in positions(key)
        )
        if obs is not None:
            obs.op_seconds.observe(perf_counter() - start)
            obs.inserts.inc(len(keys))
        return flipped

    def may_contain(self, key: Key) -> bool:
        """Return ``False`` if *key* is definitely absent, ``True`` if it may be present."""
        obs = self._obs
        if obs is None:
            return all(self.bits.get(pos) for pos in self.positions(key))
        start = perf_counter()
        result = all(self.bits.get(pos) for pos in self.positions(key))
        obs.op_seconds.observe(perf_counter() - start)
        obs.probes.inc()
        if result:
            obs.probe_positives.inc()
        return result

    def may_contain_many(self, keys: Iterable[Key]) -> List[bool]:
        """Batch membership probes: one answer per key, in order."""
        keys = list(keys)
        obs = self._obs
        start = perf_counter() if obs is not None else 0.0
        get = self.bits.get
        positions = self.positions
        results = [
            all(get(pos) for pos in positions(key)) for key in keys
        ]
        if obs is not None:
            obs.op_seconds.observe(perf_counter() - start)
            obs.probes.inc(len(keys))
            obs.probe_positives.inc(sum(results))
        return results

    def __contains__(self, key: Key) -> bool:
        return self.may_contain(key)

    def set_bit(self, index: int, value: bool) -> bool:
        """Apply one absolute bit-flip record from an update message."""
        return self.bits.set(index, value)

    def apply_flips(self, flips: Iterable[Tuple[int, bool]]) -> int:
        """Apply ``(index, value)`` records; return how many bits changed.

        Records are absolute (set bit i to v), so replaying them is
        idempotent and a lost earlier update cannot corrupt later ones --
        the property the paper relies on to ship updates over unreliable
        transport.
        """
        changed = 0
        for index, value in flips:
            if self.bits.set(index, value):
                changed += 1
        return changed

    def reset(self) -> None:
        """Clear the filter (e.g. when a failed neighbour recovers)."""
        self.bits.reset()

    def fill_ratio(self) -> float:
        """Fraction of bits set; the observable proxy for filter load."""
        return self.bits.fill_ratio

    def expected_false_positive_rate(self) -> float:
        """False-positive probability implied by the current fill ratio.

        For a filter with fill ratio ``p1`` probed with ``k`` hash
        functions, a random absent key passes all probes with probability
        ``p1**k``.
        """
        return self.bits.fill_ratio ** self.hash_family.num_functions

    def size_bytes(self) -> int:
        """Memory footprint of the bit vector, in bytes."""
        return self.bits.size_bytes()

    def to_bytes(self) -> bytes:
        """Serialize the bit vector (for whole-filter 'cache digest' updates)."""
        return self.bits.to_bytes()

    @classmethod
    def from_bytes(
        cls,
        num_bits: int,
        payload: bytes,
        hash_family: Optional[MD5HashFamily] = None,
    ) -> "BloomFilter":
        """Rebuild a filter from :meth:`to_bytes` output."""
        filt = cls(num_bits, hash_family=hash_family)
        filt.bits = BitArray.from_bytes(num_bits, payload)
        return filt

    def copy(self) -> "BloomFilter":
        """Return an independent copy sharing the same hash family."""
        clone = BloomFilter(self.bits.size, hash_family=self.hash_family)
        clone.bits = self.bits.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.bits == other.bits
            and self.hash_family == other.hash_family
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(num_bits={self.bits.size}, "
            f"fill_ratio={self.bits.fill_ratio:.4f}, "
            f"hash_family={self.hash_family!r})"
        )
