"""Exception hierarchy for the summary cache reproduction.

Every exception raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.  This is
machine-enforced: lint rule SC005 (``summary-cache lint``) rejects any
``raise`` of a bare builtin exception in library code.

Where a builtin type is the natural contract -- an out-of-range index
is an :class:`IndexError`, a bad parameter a :class:`ValueError` -- the
domain class *also* subclasses that builtin, so callers written against
either vocabulary keep working.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters."""


class ProtocolError(ReproError):
    """A wire message could not be encoded or decoded."""


class SummaryMismatchError(ProtocolError):
    """A summary update does not match the copy held for its sender.

    Raised when a DIRUPDATE announces a different filter geometry,
    hash specification, or representation than the receiver's copy --
    the sender rebuilt or reconfigured, so the copy needs a whole-summary
    resynchronization, not a patch.
    """


class KeyTypeError(ReproError, TypeError):
    """A summary/hash key had an unsupported type (not ``str``/``bytes``)."""


class BitIndexError(ReproError, IndexError):
    """A bit or counter index fell outside its array."""


class SummaryStateError(ReproError, ValueError):
    """A summary mutation contradicts its recorded state.

    Raised for counter underflows and removals of keys that were never
    inserted -- proceeding would silently corrupt the summary, which is
    exactly the failure class Section V-C's counting discipline exists
    to prevent.
    """


class CacheStateError(ReproError, KeyError):
    """A cache operation needs state the cache does not have.

    Raised e.g. when a replacement policy is asked for a victim while
    empty.
    """


class TraceFormatError(ReproError):
    """A trace file or record did not match the expected format."""


class TraceIndexError(TraceFormatError, IndexError):
    """A record index fell outside a trace or trace window."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProxyError(ReproError):
    """The asyncio proxy prototype hit a fatal runtime condition."""
