"""Exception hierarchy for the summary cache reproduction.

Every exception raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class ProtocolError(ReproError):
    """A wire message could not be encoded or decoded."""


class SummaryMismatchError(ProtocolError):
    """A summary update does not match the copy held for its sender.

    Raised when a DIRUPDATE announces a different filter geometry,
    hash specification, or representation than the receiver's copy --
    the sender rebuilt or reconfigured, so the copy needs a whole-summary
    resynchronization, not a patch.
    """


class TraceFormatError(ReproError):
    """A trace file or record did not match the expected format."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProxyError(ReproError):
    """The asyncio proxy prototype hit a fatal runtime condition."""
