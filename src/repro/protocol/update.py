"""Building and applying summary update messages.

The prototype "sends updates whenever there are enough changes to fill
an IP packet" (Section VI-B): :func:`build_dir_update_messages` batches
a flip list into MTU-sized ``DirUpdate`` messages.  Because records are
absolute set/clear operations, message loss degrades a peer's copy
gracefully instead of corrupting it, and replay is idempotent.

:func:`build_digest_messages` and :class:`DigestAssembler` implement the
whole-filter alternative (Squid's cache digests), used when the delay
threshold is large or a peer needs a full resynchronization (e.g. after
the paper's failure/recovery reinitialization).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bloom import BloomFilter
from repro.core.counting_bloom import CountingBloomFilter
from repro.core.hashing import MD5HashFamily
from repro.errors import ProtocolError, SummaryMismatchError
from repro.protocol.wire import (
    DIGEST_HEADER_SIZE,
    DIRUPDATE_HEADER_SIZE,
    ICP_HEADER_SIZE,
    SET_UPDATE_HEADER_SIZE,
    DigestChunk,
    DirUpdate,
    SetDirUpdate,
    _set_record_size,
)

#: A conservative Ethernet-path MTU for UDP payload sizing.
DEFAULT_MTU = 1400


def build_dir_update_messages(
    flips: Sequence[Tuple[int, bool]],
    hash_family: MD5HashFamily,
    bit_array_size: int,
    mtu: int = DEFAULT_MTU,
    request_number: int = 0,
    sender: int = 0,
) -> List[DirUpdate]:
    """Batch *flips* into ``DirUpdate`` messages no larger than *mtu* bytes.

    Every message repeats the full hash-specification header so each is
    independently verifiable (and the stream tolerates loss).
    """
    overhead = ICP_HEADER_SIZE + DIRUPDATE_HEADER_SIZE
    if mtu <= overhead + 4:
        raise ProtocolError(
            f"mtu of {mtu} bytes cannot carry any flip records "
            f"(fixed overhead is {overhead} bytes)"
        )
    per_message = (mtu - overhead) // 4
    num, bits = hash_family.spec()
    messages = []
    for start in range(0, len(flips), per_message):
        batch = tuple(flips[start : start + per_message])
        messages.append(
            DirUpdate(
                function_num=num,
                function_bits=bits,
                bit_array_size=bit_array_size,
                flips=batch,
                request_number=request_number,
                sender=sender,
            )
        )
    return messages


def apply_dir_update(target: BloomFilter, update: DirUpdate) -> int:
    """Apply *update* to a peer-filter copy; return bits actually changed.

    The receiver verifies the geometry announced in the header against
    the filter it holds; a mismatch means the sender reconfigured (or
    the copy was initialized against a different spec), which requires a
    full resync rather than a patch, so it raises
    :class:`~repro.errors.SummaryMismatchError`.
    """
    expected_num, expected_bits = target.hash_family.spec()
    if (
        update.function_num != expected_num
        or update.function_bits != expected_bits
        or update.bit_array_size != target.num_bits
    ):
        raise SummaryMismatchError(
            "DIRUPDATE geometry mismatch: message specifies "
            f"({update.function_num} fns x {update.function_bits} bits, "
            f"{update.bit_array_size} array bits) but local copy is "
            f"({expected_num} fns x {expected_bits} bits, "
            f"{target.num_bits} array bits)"
        )
    return target.apply_flips(update.flips)


def build_set_update_messages(
    representation: int,
    added: Sequence[bytes],
    removed: Sequence[bytes],
    mtu: int = DEFAULT_MTU,
    request_number: int = 0,
    sender: int = 0,
) -> List[SetDirUpdate]:
    """Batch set-delta records into ``SetDirUpdate`` messages under *mtu*.

    The counterpart of :func:`build_dir_update_messages` for the
    exact-directory and server-name representations: *added* and
    *removed* are already-encoded records (16-byte digests, or UTF-8
    names), split greedily so each datagram stays within the byte
    budget.  Records keep their added/removed polarity across message
    boundaries.
    """
    overhead = ICP_HEADER_SIZE + SET_UPDATE_HEADER_SIZE
    budget = mtu - overhead
    tagged = [(record, True) for record in added] + [
        (record, False) for record in removed
    ]
    if tagged:
        smallest = min(_set_record_size(representation, r) for r, _ in tagged)
        if budget < smallest:
            raise ProtocolError(
                f"mtu of {mtu} bytes cannot carry any set-delta records "
                f"(fixed overhead is {overhead} bytes)"
            )
    messages = []
    batch_added: List[bytes] = []
    batch_removed: List[bytes] = []
    used = 0
    for record, is_add in tagged:
        cost = _set_record_size(representation, record)
        if used + cost > budget and (batch_added or batch_removed):
            messages.append(
                SetDirUpdate(
                    representation=representation,
                    added=tuple(batch_added),
                    removed=tuple(batch_removed),
                    request_number=request_number,
                    sender=sender,
                )
            )
            batch_added, batch_removed, used = [], [], 0
        (batch_added if is_add else batch_removed).append(record)
        used += cost
    if batch_added or batch_removed:
        messages.append(
            SetDirUpdate(
                representation=representation,
                added=tuple(batch_added),
                removed=tuple(batch_removed),
                request_number=request_number,
                sender=sender,
            )
        )
    return messages


def build_digest_messages(
    source: CountingBloomFilter,
    mtu: int = DEFAULT_MTU,
    request_number: int = 0,
    sender: int = 0,
) -> List[DigestChunk]:
    """Chunk a whole-filter snapshot into ``DigestChunk`` messages."""
    overhead = ICP_HEADER_SIZE + DIGEST_HEADER_SIZE
    if mtu <= overhead:
        raise ProtocolError(
            f"mtu of {mtu} bytes cannot carry any digest payload"
        )
    per_chunk = mtu - overhead
    data = source.filter.to_bytes()
    num, bits = source.hash_family.spec()
    chunks = []
    for offset in range(0, len(data), per_chunk):
        chunks.append(
            DigestChunk(
                function_num=num,
                function_bits=bits,
                bit_array_size=source.num_bits,
                byte_offset=offset,
                total_bytes=len(data),
                payload=data[offset : offset + per_chunk],
                request_number=request_number,
                sender=sender,
            )
        )
    if not chunks:  # zero-bit filters cannot occur, but guard anyway
        raise ProtocolError("cannot build digest messages for empty filter")
    return chunks


class DigestAssembler:
    """Reassembles a peer's filter from ``DigestChunk`` messages.

    Chunks may arrive out of order or duplicated; a chunk whose geometry
    differs from previously seen chunks restarts assembly (the peer
    rebuilt its filter mid-transfer).
    """

    def __init__(self) -> None:
        self._spec: Optional[Tuple[int, int, int, int]] = None
        self._pieces: Dict[int, bytes] = {}

    def add(self, chunk: DigestChunk) -> Optional[BloomFilter]:
        """Feed one chunk; return the completed filter or ``None``."""
        spec = (
            chunk.function_num,
            chunk.function_bits,
            chunk.bit_array_size,
            chunk.total_bytes,
        )
        if self._spec != spec:
            self._spec = spec
            self._pieces = {}
        self._pieces[chunk.byte_offset] = chunk.payload

        received = sum(len(p) for p in self._pieces.values())
        if received < chunk.total_bytes:
            return None

        data = bytearray(chunk.total_bytes)
        covered = 0
        for offset in sorted(self._pieces):
            piece = self._pieces[offset]
            data[offset : offset + len(piece)] = piece
            covered += len(piece)
        if covered != chunk.total_bytes:
            return None  # duplicates overlapped; wait for real coverage

        family = MD5HashFamily.from_spec(
            chunk.function_num, chunk.function_bits
        )
        completed = BloomFilter.from_bytes(
            chunk.bit_array_size, bytes(data), hash_family=family
        )
        self._spec = None
        self._pieces = {}
        return completed
