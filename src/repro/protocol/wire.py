"""ICP v2 wire format plus the summary cache extensions.

The base layout follows RFC 2186: a 20-byte header ::

    opcode(1) version(1) length(2) request_number(4)
    options(4) option_data(4) sender_host(4)

followed by an opcode-specific payload.  The paper adds
``ICP_OP_DIRUPDATE`` (Section VI-A), whose payload is ::

    Function_Num(2) Function_Bits(2) BitArray_Size_InBits(4)
    Number_of_Updates(4)

followed by ``Number_of_Updates`` 32-bit records: "The most significant
bit in an integer specifies whether the bit should be set to 0 or 1, and
the rest of the bits specify the index of the bit that needs to be
changed."  Records are absolute, so lost updates do not cascade, and
"every update message carries the header, which specifies the hash
functions, so that receivers can verify the information."  The header
"limits the hash table size to be less than 2 billion."

This implementation additionally tags every ``ICP_OP_DIRUPDATE`` with a
**representation id** in the (otherwise unused) ICP Options field, so
the same opcode can carry deltas for any summary representation the
paper compares: id 0 (:data:`REPR_BLOOM`) is the bit-flip payload above
-- byte-identical to the untagged legacy format -- while ids 1
(:data:`REPR_EXACT`) and 2 (:data:`REPR_SERVER_NAME`) carry
:class:`SetDirUpdate` payloads of added/removed directory records
(16-byte MD5 digests, or length-prefixed server names).

``ICP_OP_DIGEST`` implements the whole-bit-array alternative ("if the
delay threshold is large, then it is more economical to send the entire
bit array; this approach is adopted in the Cache Digest prototype in
Squid"), chunked to fit a UDP MTU.

On ``ICP_OP_QUERY`` the Options / Option Data pair instead carries
**distributed-trace context** (trace id / parent span id, 0 = none), so
a query handled on a remote peer can join the originating client
request's trace; see :mod:`repro.obs.spans` and the header table in
``docs/wire-protocol.md``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.errors import ProtocolError

#: ICP protocol version implemented (the paper extends version 2).
ICP_VERSION = 2

#: Size of the fixed ICP header in bytes.
ICP_HEADER_SIZE = 20

#: Size of the DIRUPDATE extension header in bytes.
DIRUPDATE_HEADER_SIZE = 12

#: Size of the set-delta (exact / server-name) extension header in bytes.
SET_UPDATE_HEADER_SIZE = 8

#: Size of the DIGEST chunk header in bytes.
DIGEST_HEADER_SIZE = 16

#: Maximum representable bit index (31 bits: the MSB carries the value).
MAX_BIT_INDEX = (1 << 31) - 1

#: DIRUPDATE representation ids (carried in the ICP Options field).
#: 0 is the paper's Bloom bit-flip encoding -- the value legacy,
#: untagged senders put on the wire.
REPR_BLOOM = 0
#: Exact-directory delta: 16-byte MD5 URL digests.
REPR_EXACT = 1
#: Server-name delta: length-prefixed UTF-8 host names.
REPR_SERVER_NAME = 2

#: The representations whose deltas are added/removed record sets.
SET_REPRESENTATIONS = (REPR_EXACT, REPR_SERVER_NAME)

#: Fixed size of one exact-directory record (an MD5 digest).
EXACT_RECORD_BYTES = 16

_HEADER = struct.Struct("!BBHIIII")
_DIRUPDATE_HEADER = struct.Struct("!HHII")
_SET_UPDATE_HEADER = struct.Struct("!II")
_DIGEST_HEADER = struct.Struct("!HHIII")


class Opcode(enum.IntEnum):
    """ICP opcodes (RFC 2186 values plus the summary cache extensions)."""

    INVALID = 0
    QUERY = 1
    HIT = 2
    MISS = 3
    ERR = 4
    SECHO = 10
    DECHO = 11
    MISS_NOFETCH = 21
    DENIED = 22
    HIT_OBJ = 23
    #: Summary cache extension: directory (bit-flip) update.
    DIRUPDATE = 32
    #: Summary cache extension: whole-filter chunk (cache-digest style).
    DIGEST = 33


def _encode(
    opcode: Opcode,
    request_number: int,
    sender: int,
    payload: bytes,
    options: int = 0,
    option_data: int = 0,
) -> bytes:
    length = ICP_HEADER_SIZE + len(payload)
    if length > 0xFFFF:
        raise ProtocolError(
            f"message of {length} bytes exceeds the 16-bit ICP length field"
        )
    header = _HEADER.pack(
        opcode,
        ICP_VERSION,
        length,
        request_number & 0xFFFFFFFF,
        options & 0xFFFFFFFF,
        option_data & 0xFFFFFFFF,
        sender,
    )
    return header + payload


def _url_payload(url: str) -> bytes:
    data = url.encode("utf-8")
    if b"\x00" in data:
        raise ProtocolError("URL may not contain NUL bytes")
    return data + b"\x00"


def _parse_url(payload: bytes, what: str) -> str:
    end = payload.find(b"\x00")
    if end == -1:
        raise ProtocolError(f"{what}: URL payload is not NUL-terminated")
    return payload[:end].decode("utf-8")


@dataclass(frozen=True)
class IcpQuery:
    """An ``ICP_OP_QUERY``: "is this URL a fresh hit in your cache?".

    A query may carry **trace context** in the otherwise-unused header
    fields: ``trace_id`` travels in Options and ``parent_span`` in
    Option Data, so the peer handling the query can join the
    originating client request's distributed trace (see
    ``repro.obs.spans``).  Both default to 0 -- "no context" -- which
    keeps the encoding byte-identical to the pre-tracing format for
    untraced senders.
    """

    url: str
    request_number: int = 0
    requester: int = 0
    sender: int = 0
    trace_id: int = 0
    parent_span: int = 0

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        payload = struct.pack("!I", self.requester) + _url_payload(self.url)
        return _encode(
            Opcode.QUERY,
            self.request_number,
            self.sender,
            payload,
            options=self.trace_id,
            option_data=self.parent_span,
        )


@dataclass(frozen=True)
class IcpHit:
    """An ``ICP_OP_HIT`` reply."""

    url: str
    request_number: int = 0
    sender: int = 0

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        return _encode(
            Opcode.HIT, self.request_number, self.sender, _url_payload(self.url)
        )


@dataclass(frozen=True)
class IcpMiss:
    """An ``ICP_OP_MISS`` reply."""

    url: str
    request_number: int = 0
    sender: int = 0

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        return _encode(
            Opcode.MISS, self.request_number, self.sender, _url_payload(self.url)
        )


@dataclass(frozen=True)
class IcpMissNoFetch:
    """An ``ICP_OP_MISS_NOFETCH`` reply (peer overloaded / do not fetch)."""

    url: str
    request_number: int = 0
    sender: int = 0

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        return _encode(
            Opcode.MISS_NOFETCH,
            self.request_number,
            self.sender,
            _url_payload(self.url),
        )


def encode_flip(index: int, value: bool) -> int:
    """Pack one bit-flip record: MSB = new value, low 31 bits = index."""
    if not 0 <= index <= MAX_BIT_INDEX:
        raise ProtocolError(
            f"bit index {index} exceeds the 31-bit record limit"
        )
    return ((1 << 31) | index) if value else index


def decode_flip(record: int) -> Tuple[int, bool]:
    """Unpack one bit-flip record into ``(index, value)``."""
    return record & MAX_BIT_INDEX, bool(record >> 31)


@dataclass(frozen=True)
class DirUpdate:
    """An ``ICP_OP_DIRUPDATE``: a batch of absolute bit set/clear records.

    The extension header (``function_num``, ``function_bits``,
    ``bit_array_size``) pins down the filter geometry so a receiver can
    verify the update matches the structure it holds.
    """

    function_num: int
    function_bits: int
    bit_array_size: int
    flips: Tuple[Tuple[int, bool], ...] = field(default_factory=tuple)
    request_number: int = 0
    sender: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.function_num <= 0xFFFF:
            raise ProtocolError(
                f"function_num {self.function_num} out of 16-bit range"
            )
        if not 1 <= self.function_bits <= 0xFFFF:
            raise ProtocolError(
                f"function_bits {self.function_bits} out of 16-bit range"
            )
        if not 1 <= self.bit_array_size <= MAX_BIT_INDEX + 1:
            raise ProtocolError(
                f"bit_array_size {self.bit_array_size} exceeds the "
                "2-billion-bit protocol limit"
            )
        for index, _value in self.flips:
            if index >= self.bit_array_size:
                raise ProtocolError(
                    f"flip index {index} outside bit array of "
                    f"{self.bit_array_size} bits"
                )

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        payload = bytearray(
            _DIRUPDATE_HEADER.pack(
                self.function_num,
                self.function_bits,
                self.bit_array_size,
                len(self.flips),
            )
        )
        for index, value in self.flips:
            payload += struct.pack("!I", encode_flip(index, value))
        return _encode(
            Opcode.DIRUPDATE, self.request_number, self.sender, bytes(payload)
        )

    def wire_size(self) -> int:
        """Total encoded size in bytes."""
        return ICP_HEADER_SIZE + DIRUPDATE_HEADER_SIZE + 4 * len(self.flips)

    @property
    def change_count(self) -> int:
        """Records carried (uniform across DIRUPDATE payload kinds)."""
        return len(self.flips)


def _set_record_size(representation: int, record: bytes) -> int:
    """Encoded size of one set-delta record."""
    if representation == REPR_EXACT:
        return EXACT_RECORD_BYTES
    return 2 + len(record)


@dataclass(frozen=True)
class SetDirUpdate:
    """An ``ICP_OP_DIRUPDATE`` carrying a digest-set delta.

    Used for the exact-directory and server-name representations, whose
    deltas are *records added to / removed from a set* rather than bit
    flips.  The representation id travels in the ICP header's Options
    field; the payload is an 8-byte header (``Added_Count(4)``,
    ``Removed_Count(4)``) followed by the added records then the removed
    records -- fixed 16-byte MD5 digests for :data:`REPR_EXACT`,
    2-byte-length-prefixed UTF-8 names for :data:`REPR_SERVER_NAME`.

    Like the bit-flip form, records are absolute statements of final
    membership, so loss degrades a copy gracefully and replay is
    idempotent.
    """

    representation: int
    added: Tuple[bytes, ...] = field(default_factory=tuple)
    removed: Tuple[bytes, ...] = field(default_factory=tuple)
    request_number: int = 0
    sender: int = 0

    def __post_init__(self) -> None:
        if self.representation not in SET_REPRESENTATIONS:
            raise ProtocolError(
                f"representation id {self.representation} is not a "
                f"set representation (expected one of {SET_REPRESENTATIONS})"
            )
        for record in self.added + self.removed:
            if self.representation == REPR_EXACT:
                if len(record) != EXACT_RECORD_BYTES:
                    raise ProtocolError(
                        f"exact-directory record of {len(record)} bytes; "
                        f"MD5 digests are {EXACT_RECORD_BYTES} bytes"
                    )
            elif not 1 <= len(record) <= 0xFFFF:
                raise ProtocolError(
                    f"server-name record of {len(record)} bytes outside "
                    "[1, 65535]"
                )

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        payload = bytearray(
            _SET_UPDATE_HEADER.pack(len(self.added), len(self.removed))
        )
        for record in self.added + self.removed:
            if self.representation == REPR_EXACT:
                payload += record
            else:
                payload += struct.pack("!H", len(record)) + record
        return _encode(
            Opcode.DIRUPDATE,
            self.request_number,
            self.sender,
            bytes(payload),
            options=self.representation,
        )

    def wire_size(self) -> int:
        """Total encoded size in bytes."""
        return (
            ICP_HEADER_SIZE
            + SET_UPDATE_HEADER_SIZE
            + sum(
                _set_record_size(self.representation, r)
                for r in self.added + self.removed
            )
        )

    @property
    def change_count(self) -> int:
        """Records carried (uniform across DIRUPDATE payload kinds)."""
        return len(self.added) + len(self.removed)


def _decode_set_records(
    representation: int, data: bytes, count: int, what: str
) -> Tuple[Tuple[bytes, ...], int]:
    """Parse *count* set-delta records from *data*; return them + offset."""
    records = []
    offset = 0
    for _ in range(count):
        if representation == REPR_EXACT:
            end = offset + EXACT_RECORD_BYTES
            if end > len(data):
                raise ProtocolError(f"{what}: truncated digest record")
            records.append(data[offset:end])
            offset = end
        else:
            if offset + 2 > len(data):
                raise ProtocolError(f"{what}: truncated name length")
            (name_len,) = struct.unpack_from("!H", data, offset)
            if name_len == 0:
                raise ProtocolError(f"{what}: zero-length name record")
            end = offset + 2 + name_len
            if end > len(data):
                raise ProtocolError(f"{what}: truncated name record")
            records.append(data[offset + 2 : end])
            offset = end
    return tuple(records), offset


@dataclass(frozen=True)
class DigestChunk:
    """An ``ICP_OP_DIGEST``: one chunk of a whole-bit-array transfer."""

    function_num: int
    function_bits: int
    bit_array_size: int
    byte_offset: int
    total_bytes: int
    payload: bytes
    request_number: int = 0
    sender: int = 0

    def __post_init__(self) -> None:
        expected_total = (self.bit_array_size + 7) // 8
        if self.total_bytes != expected_total:
            raise ProtocolError(
                f"total_bytes {self.total_bytes} inconsistent with "
                f"{self.bit_array_size} bits"
            )
        if self.byte_offset + len(self.payload) > self.total_bytes:
            raise ProtocolError(
                f"chunk [{self.byte_offset}, "
                f"{self.byte_offset + len(self.payload)}) overruns "
                f"{self.total_bytes}-byte digest"
            )

    def encode(self) -> bytes:
        """Serialize to a wire datagram."""
        header = _DIGEST_HEADER.pack(
            self.function_num,
            self.function_bits,
            self.bit_array_size,
            self.byte_offset,
            self.total_bytes,
        )
        return _encode(
            Opcode.DIGEST,
            self.request_number,
            self.sender,
            header + self.payload,
        )


#: Every message :func:`decode_message` can produce.
IcpMessage = Union[
    IcpQuery,
    IcpHit,
    IcpMiss,
    IcpMissNoFetch,
    DirUpdate,
    SetDirUpdate,
    DigestChunk,
]


def decode_message(data: bytes) -> IcpMessage:
    """Decode one ICP datagram into its message dataclass.

    Raises :class:`~repro.errors.ProtocolError` for short datagrams,
    version mismatches, inconsistent length fields, and unknown opcodes.
    """
    if len(data) < ICP_HEADER_SIZE:
        raise ProtocolError(
            f"datagram of {len(data)} bytes is shorter than the "
            f"{ICP_HEADER_SIZE}-byte ICP header"
        )
    opcode, version, length, request_number, _opts, _optdata, sender = (
        _HEADER.unpack_from(data)
    )
    if version != ICP_VERSION:
        raise ProtocolError(f"unsupported ICP version {version}")
    if length != len(data):
        raise ProtocolError(
            f"length field says {length} bytes but datagram has {len(data)}"
        )
    payload = data[ICP_HEADER_SIZE:]

    if opcode == Opcode.QUERY:
        if len(payload) < 5:
            raise ProtocolError("QUERY payload too short")
        (requester,) = struct.unpack_from("!I", payload)
        url = _parse_url(payload[4:], "QUERY")
        return IcpQuery(
            url=url,
            request_number=request_number,
            requester=requester,
            sender=sender,
            trace_id=_opts,
            parent_span=_optdata,
        )
    if opcode == Opcode.HIT:
        return IcpHit(
            url=_parse_url(payload, "HIT"),
            request_number=request_number,
            sender=sender,
        )
    if opcode == Opcode.MISS:
        return IcpMiss(
            url=_parse_url(payload, "MISS"),
            request_number=request_number,
            sender=sender,
        )
    if opcode == Opcode.MISS_NOFETCH:
        return IcpMissNoFetch(
            url=_parse_url(payload, "MISS_NOFETCH"),
            request_number=request_number,
            sender=sender,
        )
    if opcode == Opcode.DIRUPDATE:
        if _opts in SET_REPRESENTATIONS:
            if len(payload) < SET_UPDATE_HEADER_SIZE:
                raise ProtocolError("DIRUPDATE set payload too short")
            added_count, removed_count = _SET_UPDATE_HEADER.unpack_from(
                payload
            )
            records = payload[SET_UPDATE_HEADER_SIZE:]
            added, consumed = _decode_set_records(
                _opts, records, added_count, "DIRUPDATE added"
            )
            removed, tail = _decode_set_records(
                _opts, records[consumed:], removed_count, "DIRUPDATE removed"
            )
            if consumed + tail != len(records):
                raise ProtocolError(
                    f"DIRUPDATE announces {added_count}+{removed_count} "
                    f"records but carries {len(records)} payload bytes"
                )
            return SetDirUpdate(
                representation=_opts,
                added=added,
                removed=removed,
                request_number=request_number,
                sender=sender,
            )
        if _opts != REPR_BLOOM:
            raise ProtocolError(
                f"unknown DIRUPDATE representation id {_opts}"
            )
        if len(payload) < DIRUPDATE_HEADER_SIZE:
            raise ProtocolError("DIRUPDATE payload too short")
        fnum, fbits, asize, count = _DIRUPDATE_HEADER.unpack_from(payload)
        records = payload[DIRUPDATE_HEADER_SIZE:]
        if len(records) != 4 * count:
            raise ProtocolError(
                f"DIRUPDATE announces {count} records but carries "
                f"{len(records)} payload bytes"
            )
        flips: List[Tuple[int, bool]] = []
        for i in range(count):
            (record,) = struct.unpack_from("!I", records, 4 * i)
            flips.append(decode_flip(record))
        return DirUpdate(
            function_num=fnum,
            function_bits=fbits,
            bit_array_size=asize,
            flips=tuple(flips),
            request_number=request_number,
            sender=sender,
        )
    if opcode == Opcode.DIGEST:
        if len(payload) < DIGEST_HEADER_SIZE:
            raise ProtocolError("DIGEST payload too short")
        fnum, fbits, asize, offset, total = struct.unpack_from(
            "!HHIII", payload
        )
        return DigestChunk(
            function_num=fnum,
            function_bits=fbits,
            bit_array_size=asize,
            byte_offset=offset,
            total_bytes=total,
            payload=payload[DIGEST_HEADER_SIZE:],
            request_number=request_number,
            sender=sender,
        )
    raise ProtocolError(f"unknown or unsupported opcode {opcode}")
