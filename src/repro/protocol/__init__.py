"""The summary-cache enhanced ICP wire protocol (Section VI-A).

- :mod:`repro.protocol.wire` -- ICP v2 message encoding/decoding
  (RFC 2186 layout) plus the paper's ``ICP_OP_DIRUPDATE`` opcode whose
  payload is the hash-function specification header followed by 32-bit
  bit-flip records, and an ``ICP_OP_DIGEST`` opcode for whole-filter
  transfers (the Squid cache-digest variant the paper mentions).
- :mod:`repro.protocol.update` -- assembling flip lists into MTU-sized
  update messages and applying received updates to a peer's filter copy.
"""

from repro.protocol.update import (
    DigestAssembler,
    apply_dir_update,
    build_digest_messages,
    build_dir_update_messages,
)
from repro.protocol.wire import (
    ICP_HEADER_SIZE,
    ICP_VERSION,
    DigestChunk,
    DirUpdate,
    IcpHit,
    IcpMiss,
    IcpMissNoFetch,
    IcpQuery,
    Opcode,
    decode_message,
)

__all__ = [
    "DigestAssembler",
    "DigestChunk",
    "DirUpdate",
    "ICP_HEADER_SIZE",
    "ICP_VERSION",
    "IcpHit",
    "IcpMiss",
    "IcpMissNoFetch",
    "IcpQuery",
    "Opcode",
    "apply_dir_update",
    "build_digest_messages",
    "build_dir_update_messages",
    "decode_message",
]
