"""A load generator for the live proxy data plane.

Replays the Wisconsin Proxy Benchmark workload (Section IV) over N
concurrent clients against running proxies and measures what the
paper's prototype claims rest on: sustained requests/sec and tail
latency on real sockets.  Each client is a serial
:class:`~repro.proxy.client.ClientDriver` (the benchmark's
"no thinking time" client processes); clients run concurrently and are
dealt round-robin across the target proxies.

Two connection disciplines matter for `BENCH_proxy.json`:

- ``keep_alive=True`` -- every client rides one persistent connection
  and the proxies pool their origin/peer connections (the post-PR
  data plane);
- ``keep_alive=False`` -- one TCP connection per request and
  ``pool_size=0`` proxies (the pre-keep-alive baseline).

Cache behaviour is identical either way (same URLs in the same
per-client order), so the comparison isolates pure data-plane
overhead.

Latency is measured client-side per request (exact percentiles over
every sample) and cross-checked against the proxies'
``proxy_request_phase_seconds`` obs histograms, whose bucket-
interpolated quantiles ride along in the result.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.benchmarkkit.wisconsin import (
    WisconsinConfig,
    generate_client_streams,
)
from repro.errors import ConfigurationError, ProxyError, ReproError
from repro.obs.registry import Histogram
from repro.proxy.client import ClientDriver
from repro.proxy.origin import OriginServer
from repro.proxy.server import SummaryCacheProxy
from repro.traces.model import Request


@dataclass(frozen=True)
class LoadGenConfig:
    """Parameters of one load-generation run."""

    #: Concurrent clients (each serial, no think time).
    clients: int = 16
    requests_per_client: int = 200
    #: Persistent client connections + pooled upstream fetches when
    #: true; one connection per request when false.
    keep_alive: bool = True
    #: Inherent hit ratio of each client's stream (Wisconsin knob).
    target_hit_ratio: float = 0.25
    mean_size: int = 8 * 1024
    #: Cap on Pareto body sizes; modest by default so the measured
    #: ceiling is connection handling, not loopback bandwidth.
    max_size: int = 256 * 1024
    seed: int = 1
    #: Per-request wall-clock budget; ``None`` disables.
    timeout: Optional[float] = 30.0
    #: Fraction of requests drawn from the cross-client shared pool
    #: (see :class:`~repro.benchmarkkit.wisconsin.WisconsinConfig`);
    #: 0.0 keeps the classic non-overlapping streams.
    shared_fraction: float = 0.0
    #: Distinct documents in the shared pool.
    shared_docs: int = 64

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError("clients must be >= 1")
        if self.requests_per_client < 1:
            raise ConfigurationError("requests_per_client must be >= 1")

    def workload(self) -> WisconsinConfig:
        """The Wisconsin workload this run replays."""
        return WisconsinConfig(
            num_clients=self.clients,
            requests_per_client=self.requests_per_client,
            target_hit_ratio=self.target_hit_ratio,
            mean_size=self.mean_size,
            max_size=self.max_size,
            seed=self.seed,
            shared_fraction=self.shared_fraction,
            shared_docs=self.shared_docs,
        )


@dataclass
class LoadGenResult:
    """What one load-generation run measured."""

    label: str
    clients: int
    requests: int
    errors: int
    elapsed_seconds: float
    requests_per_second: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    bytes_received: int
    connections_opened: int
    cache_sources: Dict[str, int] = field(default_factory=dict)
    #: Bucket-interpolated p50/p99 (ms) of the proxies' aggregated
    #: ``proxy_request_phase_seconds{phase="total"}`` histograms --
    #: the server-side cross-check of the client-side numbers.
    proxy_phase_p50_ms: Optional[float] = None
    proxy_phase_p99_ms: Optional[float] = None
    #: Origin-side accounting over this run (deltas, so phases sharing
    #: one origin do not bleed into each other); ``None`` when the
    #: caller did not pass the origin server.
    origin_requests: Optional[int] = None
    bytes_from_origin: Optional[int] = None
    #: Proxy-to-proxy fetches served during this run (discovery-based
    #: remote hits plus placement-routed forwards); ``None`` without
    #: in-process proxies.
    peer_fetches: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the `BENCH_proxy.json` shape)."""
        out: Dict[str, Any] = {
            "label": self.label,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "requests_per_second": round(self.requests_per_second, 1),
            "latency_p50_ms": round(self.latency_p50_ms, 3),
            "latency_p99_ms": round(self.latency_p99_ms, 3),
            "latency_mean_ms": round(self.latency_mean_ms, 3),
            "bytes_received": self.bytes_received,
            "connections_opened": self.connections_opened,
            "cache_sources": dict(sorted(self.cache_sources.items())),
        }
        if self.proxy_phase_p50_ms is not None:
            out["proxy_phase_p50_ms"] = round(self.proxy_phase_p50_ms, 3)
        if self.proxy_phase_p99_ms is not None:
            out["proxy_phase_p99_ms"] = round(self.proxy_phase_p99_ms, 3)
        if self.origin_requests is not None:
            out["origin_requests"] = self.origin_requests
        if self.bytes_from_origin is not None:
            out["bytes_from_origin"] = self.bytes_from_origin
        if self.peer_fetches is not None:
            out["peer_fetches"] = self.peer_fetches
        return out


def _quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Exact q-quantile (nearest-rank) of pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1, max(0, round(q * (len(sorted_samples) - 1)))
    )
    return sorted_samples[index]


def histogram_quantile(histogram: Histogram, q: float) -> Optional[float]:
    """Bucket-interpolated q-quantile of an obs histogram, in seconds.

    Mirrors Prometheus ``histogram_quantile``: find the first bucket
    whose cumulative count covers the target rank and interpolate
    linearly inside it.  ``None`` when the histogram is empty.
    """
    cumulative = histogram.cumulative()
    if not cumulative or cumulative[-1][1] == 0:
        return None
    total = cumulative[-1][1]
    rank = q * total
    lower_bound = 0.0
    lower_count = 0
    for bound, count in cumulative:
        if count >= rank:
            if bound == float("inf"):
                return lower_bound
            span = count - lower_count
            if span <= 0:
                return bound
            fraction = (rank - lower_count) / span
            return lower_bound + (bound - lower_bound) * fraction
        lower_bound, lower_count = bound, count
    return lower_bound


def aggregate_phase_quantiles(
    proxies: Sequence[SummaryCacheProxy], q: float
) -> Optional[float]:
    """q-quantile (seconds) over all proxies' total-phase histograms."""
    merged: Dict[float, int] = {}
    for proxy in proxies:
        histogram = proxy.registry.histogram(
            "proxy_request_phase_seconds",
            "wall time of one request phase",
            labels={"phase": "total"},
        )
        for bound, count in histogram.cumulative():
            merged[bound] = merged.get(bound, 0) + count
    if not merged:
        return None
    cumulative = sorted(merged.items())
    if cumulative[-1][1] == 0:
        return None
    # Re-run the interpolation over the merged cumulative counts.
    rank = q * cumulative[-1][1]
    lower_bound = 0.0
    lower_count = 0
    for bound, count in cumulative:
        if count >= rank:
            if bound == float("inf"):
                return lower_bound
            span = count - lower_count
            if span <= 0:
                return bound
            fraction = (rank - lower_count) / span
            return lower_bound + (bound - lower_bound) * fraction
        lower_bound, lower_count = bound, count
    return lower_bound


async def _run_client(
    driver: ClientDriver,
    requests: Sequence[Request],
    latencies: List[float],
) -> None:
    """Replay one client's stream, recording per-request latency."""
    try:
        for request in requests:
            start = perf_counter()
            try:
                await driver.fetch(request.url, size=request.size)
            except (ProxyError, ReproError, ConnectionError, OSError):
                # fetch() already counted the error in the report.
                continue
            finally:
                latencies.append(perf_counter() - start)
    finally:
        await driver.close()


async def run_loadgen(
    targets: Sequence[Tuple[str, int]],
    config: LoadGenConfig,
    label: str = "",
    proxies: Sequence[SummaryCacheProxy] = (),
    origin: Optional[OriginServer] = None,
    drivers: Optional[List[ClientDriver]] = None,
) -> LoadGenResult:
    """Replay the Wisconsin workload over concurrent clients.

    Parameters
    ----------
    targets:
        ``(host, http_port)`` of each proxy; clients are dealt
        round-robin across them.
    config:
        Workload shape and connection discipline.
    label:
        Name recorded in the result (e.g. ``"keepalive_pooled"``).
    proxies:
        When the caller runs the cluster in-process, passing the proxy
        objects lets the result carry the server-side histogram
        quantiles and peer-fetch counts next to the client-side ones.
    origin:
        The cluster's origin server; when given, the result reports the
        requests and body bytes the origin served *during this run*
        (deltas against its counters at entry).
    drivers:
        Reuse these drivers (one per concurrent client, e.g. from an
        earlier phase) instead of constructing fresh ones; each is
        rebound to its target, which resets its per-phase report.
        Must match ``config.clients``.
    """
    if not targets:
        raise ConfigurationError("loadgen needs at least one target proxy")
    streams = generate_client_streams(config.workload())
    if drivers is None:
        drivers = [
            ClientDriver(
                *targets[client_id % len(targets)],
                timeout=config.timeout,
                keep_alive=config.keep_alive,
            )
            for client_id in range(len(streams))
        ]
    else:
        if len(drivers) != len(streams):
            raise ConfigurationError(
                f"got {len(drivers)} drivers for {len(streams)} clients"
            )
        for client_id, driver in enumerate(drivers):
            host, port = targets[client_id % len(targets)]
            await driver.rebind(
                host,
                port,
                timeout=config.timeout,
                keep_alive=config.keep_alive,
            )
    origin_requests_before = origin.stats.requests if origin else 0
    origin_bytes_before = origin.stats.bytes_served if origin else 0
    peer_fetches_before = sum(
        p.stats.peer_served_requests for p in proxies
    )
    latencies: List[float] = []
    tasks = [
        _run_client(driver, stream, latencies)
        for driver, stream in zip(drivers, streams)
    ]
    start = perf_counter()
    await asyncio.gather(*tasks)
    elapsed = perf_counter() - start

    requests = sum(d.report.requests for d in drivers)
    errors = sum(d.report.errors for d in drivers)
    sources: Dict[str, int] = {}
    for driver in drivers:
        for source, count in driver.report.cache_sources.items():
            sources[source] = sources.get(source, 0) + count
    latencies.sort()
    phase_p50 = aggregate_phase_quantiles(proxies, 0.50)
    phase_p99 = aggregate_phase_quantiles(proxies, 0.99)
    return LoadGenResult(
        label=label or ("keepalive" if config.keep_alive else "per-request"),
        clients=config.clients,
        requests=requests,
        errors=errors,
        elapsed_seconds=elapsed,
        requests_per_second=requests / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=_quantile(latencies, 0.50) * 1e3,
        latency_p99_ms=_quantile(latencies, 0.99) * 1e3,
        latency_mean_ms=(
            sum(latencies) / len(latencies) * 1e3 if latencies else 0.0
        ),
        bytes_received=sum(d.report.bytes_received for d in drivers),
        connections_opened=sum(d.connections_opened for d in drivers),
        cache_sources=sources,
        proxy_phase_p50_ms=None if phase_p50 is None else phase_p50 * 1e3,
        proxy_phase_p99_ms=None if phase_p99 is None else phase_p99 * 1e3,
        origin_requests=(
            origin.stats.requests - origin_requests_before
            if origin
            else None
        ),
        bytes_from_origin=(
            origin.stats.bytes_served - origin_bytes_before
            if origin
            else None
        ),
        peer_fetches=(
            sum(p.stats.peer_served_requests for p in proxies)
            - peer_fetches_before
            if proxies
            else None
        ),
    )


def render_comparison(
    results: Sequence[LoadGenResult],
) -> str:
    """Human-readable summary of one or more runs, speedup included."""
    lines = []
    for result in results:
        lines.append(
            f"{result.label}: {result.requests} requests "
            f"({result.errors} errors) in {result.elapsed_seconds:.2f}s "
            f"= {result.requests_per_second:,.0f} req/s; "
            f"p50 {result.latency_p50_ms:.2f} ms, "
            f"p99 {result.latency_p99_ms:.2f} ms; "
            f"{result.connections_opened} connections"
        )
    if len(results) == 2 and results[0].requests_per_second > 0:
        speedup = (
            results[1].requests_per_second / results[0].requests_per_second
        )
        lines.append(
            f"speedup ({results[1].label} vs {results[0].label}): "
            f"{speedup:.2f}x requests/sec"
        )
    return "\n".join(lines)


def results_to_json(
    results: Sequence[LoadGenResult], **extra: Any
) -> str:
    """Serialize runs (plus caller-provided context) as a JSON record."""
    payload: Dict[str, Any] = dict(extra)
    payload["runs"] = [result.to_dict() for result in results]
    if len(results) == 2 and results[0].requests_per_second > 0:
        payload["speedup_requests_per_second"] = round(
            results[1].requests_per_second / results[0].requests_per_second,
            2,
        )
    return json.dumps(payload, indent=2, sort_keys=False)
