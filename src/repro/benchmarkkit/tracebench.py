"""Trace-engine benchmarks: pack/scan throughput and bounded memory.

The streaming trace engine's claims are quantitative -- a trace packs
at disk-friendly rates, replays lazily from mmap, and peak RSS stays
flat as the trace grows -- so they are measured, not asserted.  This
module produces the numbers behind ``benchmarks/BENCH_traces.json``:

- :func:`bench_pack` -- stream a synthetic workload straight from the
  generator core into a ``.sctr`` file, reporting records/second and
  bytes/record;
- :func:`bench_scan` -- a full streamed decode of the packed file,
  reporting replay records/second;
- :func:`measure_replay_rss` -- replay the packed trace through
  :func:`~repro.sharing.summary_sharing.simulate_summary_sharing` in a
  **spawned** subprocess and report that process's peak RSS.  Peak RSS
  is a high-water mark that never decreases within a process, so each
  measurement needs a fresh interpreter: a spawn (not fork) child
  whose memory history starts clean;
- :func:`bit_exact_check` -- replay the same workload once from the
  materialized in-memory trace and once from the mmap reader and
  assert the two :class:`~repro.sharing.results.SharingResult` objects
  are equal field-for-field.

The RSS ladder holds the working set fixed (``num_requests`` overrides
the request count only; clients and documents stay put) while the
trace length grows 10x, so a flat profile is attributable to the
streaming replay path rather than to a shrinking workload.
"""

from __future__ import annotations

import multiprocessing
import os
from time import perf_counter
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_summary_sharing,
)
from repro.summaries import SummaryConfig
from repro.traces.binary import BinaryTraceReader
from repro.traces.workloads import pack_workload, workload_config

__all__ = [
    "bench_pack",
    "bench_scan",
    "bit_exact_check",
    "measure_replay_rss",
    "REPLAY_MODES",
]

#: How :func:`measure_replay_rss` feeds the simulator.
REPLAY_MODES = ("stream", "materialized")

#: Per-proxy cache capacity for the replay benchmarks.  Fixed in bytes
#: (not a fraction of the infinite cache size) so the simulator's own
#: memory is identical across the RSS ladder and only the trace-side
#: memory varies with trace length.
REPLAY_CACHE_BYTES = 4 * 1024 * 1024


def bench_pack(
    workload: str,
    path: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    num_requests: Optional[int] = None,
) -> Dict[str, Any]:
    """Pack *workload* into *path*, timing the generate-and-write loop."""
    start = perf_counter()
    records, groups = pack_workload(
        workload, path, scale=scale, seed=seed, num_requests=num_requests
    )
    elapsed = perf_counter() - start
    file_bytes = os.path.getsize(path)
    return {
        "workload": workload,
        "records": records,
        "groups": groups,
        "file_bytes": file_bytes,
        "bytes_per_record": round(file_bytes / records, 2) if records else 0,
        "pack_seconds": round(elapsed, 3),
        "pack_records_per_second": (
            round(records / elapsed) if elapsed > 0 else 0
        ),
    }


def bench_scan(path: str) -> Dict[str, Any]:
    """Fully decode *path* once, streaming, timing the scan."""
    with_reader = BinaryTraceReader(path)
    try:
        start = perf_counter()
        records = 0
        for _ in with_reader:
            records += 1
        elapsed = perf_counter() - start
    finally:
        with_reader.close()
    return {
        "records": records,
        "scan_seconds": round(elapsed, 3),
        "scan_records_per_second": (
            round(records / elapsed) if elapsed > 0 else 0
        ),
    }


def _replay(
    trace: Any, groups: int, threshold: float
) -> Dict[str, Any]:
    """Run the benchmark's standard summary-sharing replay over *trace*."""
    cfg = SummarySharingConfig(
        summary=SummaryConfig(kind="bloom", load_factor=8),
        update_policy=ThresholdUpdatePolicy(threshold),
        expected_doc_size=8 * 1024,
    )
    start = perf_counter()
    result = simulate_summary_sharing(
        trace, groups, REPLAY_CACHE_BYTES, cfg
    )
    elapsed = perf_counter() - start
    return {
        "requests": result.requests,
        "total_hit_ratio": round(result.total_hit_ratio, 4),
        "false_hit_ratio": round(result.false_hit_ratio, 5),
        "replay_seconds": round(elapsed, 3),
        "replay_records_per_second": (
            round(result.requests / elapsed) if elapsed > 0 else 0
        ),
    }


def _rss_worker(
    path: str, mode: str, groups: int, threshold: float, queue
) -> None:
    """Spawn target: replay *path* in *mode*, report peak RSS.

    Runs in a fresh interpreter so its ``ru_maxrss`` high-water mark
    reflects only this replay.  Module-level so the spawn start method
    can import it by qualified name.
    """
    from repro.simulation.scale import peak_rss_bytes

    reader = BinaryTraceReader(path)
    try:
        baseline_rss = peak_rss_bytes()
        if mode == "materialized":
            trace: Any = reader.materialize()
        else:
            trace = reader
        payload = _replay(trace, groups, threshold)
        payload["mode"] = mode
        payload["baseline_rss_bytes"] = baseline_rss
        payload["peak_rss_bytes"] = peak_rss_bytes()
    finally:
        reader.close()
    queue.put(payload)


def measure_replay_rss(
    path: str,
    mode: str = "stream",
    groups: int = 16,
    threshold: float = 0.01,
) -> Dict[str, Any]:
    """Replay *path* in a spawned subprocess; return its stats + peak RSS.

    ``mode="stream"`` feeds the mmap reader straight into the
    simulator; ``mode="materialized"`` first builds the full in-memory
    :class:`~repro.traces.model.Trace`, the baseline the streaming path
    is measured against.
    """
    if mode not in REPLAY_MODES:
        raise ConfigurationError(
            f"mode must be one of {REPLAY_MODES}, got {mode!r}"
        )
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(
        target=_rss_worker, args=(path, mode, groups, threshold, queue)
    )
    proc.start()
    payload = queue.get()
    proc.join()
    if proc.exitcode != 0:
        raise ConfigurationError(
            f"replay subprocess exited with code {proc.exitcode}"
        )
    return payload


def bit_exact_check(
    workload: str,
    path: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    num_requests: Optional[int] = None,
    threshold: float = 0.01,
) -> Dict[str, Any]:
    """Replay *path* and the regenerated in-memory trace; compare.

    Returns the two result summaries plus a ``bit_exact`` flag that is
    true iff the full :class:`~repro.sharing.results.SharingResult`
    dataclasses (every counter, every byte total) compare equal.
    """
    from repro.traces.synthetic import generate_trace

    config, groups = workload_config(
        workload, scale=scale, seed=seed, num_requests=num_requests
    )
    trace = generate_trace(config)
    reader = BinaryTraceReader(path)
    try:
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=8),
            update_policy=ThresholdUpdatePolicy(threshold),
            expected_doc_size=8 * 1024,
        )
        in_memory = simulate_summary_sharing(
            trace, groups, REPLAY_CACHE_BYTES, cfg
        )
        streamed = simulate_summary_sharing(
            reader, groups, REPLAY_CACHE_BYTES, cfg
        )
    finally:
        reader.close()
    return {
        "requests": in_memory.requests,
        "bit_exact": in_memory == streamed,
        "in_memory_hit_ratio": round(in_memory.total_hit_ratio, 6),
        "streamed_hit_ratio": round(streamed.total_hit_ratio, 6),
    }
