"""Workload generation mirroring the Wisconsin Proxy Benchmark 1.0.

Section IV describes the benchmark: clients issue requests with no think
time, "the document sizes follow the Pareto distribution with
alpha = 1.1", each client's stream has a tunable inherent hit ratio via
temporal locality, and -- for the overhead experiments -- "the requests
issued by different clients do not overlap; there is no remote cache
hit among proxies."
"""

from repro.benchmarkkit.loadgen import (
    LoadGenConfig,
    LoadGenResult,
    render_comparison,
    results_to_json,
    run_loadgen,
)
from repro.benchmarkkit.wisconsin import (
    WisconsinConfig,
    generate_client_streams,
)

__all__ = [
    "LoadGenConfig",
    "LoadGenResult",
    "WisconsinConfig",
    "generate_client_streams",
    "render_comparison",
    "results_to_json",
    "run_loadgen",
]
