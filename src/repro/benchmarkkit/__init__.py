"""Benchmark workloads and measurement harnesses.

:mod:`repro.benchmarkkit.wisconsin` mirrors the Wisconsin Proxy
Benchmark 1.0 that Section IV describes: clients issue requests with no
think time, "the document sizes follow the Pareto distribution with
alpha = 1.1", each client's stream has a tunable inherent hit ratio via
temporal locality, and -- for the overhead experiments -- "the requests
issued by different clients do not overlap; there is no remote cache
hit among proxies."  :mod:`repro.benchmarkkit.loadgen` replays those
streams against a live cluster; :mod:`repro.benchmarkkit.tracebench`
measures the packed-trace engine (throughput, bounded-memory replay).
"""

from repro.benchmarkkit.loadgen import (
    LoadGenConfig,
    LoadGenResult,
    render_comparison,
    results_to_json,
    run_loadgen,
)
from repro.benchmarkkit.tracebench import (
    bench_pack,
    bench_scan,
    bit_exact_check,
    measure_replay_rss,
)
from repro.benchmarkkit.wisconsin import (
    WisconsinConfig,
    generate_client_streams,
)

__all__ = [
    "LoadGenConfig",
    "LoadGenResult",
    "WisconsinConfig",
    "bench_pack",
    "bench_scan",
    "bit_exact_check",
    "generate_client_streams",
    "measure_replay_rss",
    "render_comparison",
    "results_to_json",
    "run_loadgen",
]
