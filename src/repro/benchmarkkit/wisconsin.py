"""The Wisconsin Proxy Benchmark workload model.

Each client issues ``requests_per_client`` GETs.  With probability
``target_hit_ratio`` a request re-references a document from the
client's own history (recency-biased, so it is almost surely still in
the proxy cache -- this realizes the benchmark's "inherent cache hit
ratio in the request stream can be adjusted"); otherwise it requests a
brand-new document unique to that client, so streams of different
clients never overlap and there are no remote cache hits (the paper's
worst case for ICP, Table II).

``shared_fraction`` opts into cross-client sharing: with that
probability a request targets one of ``shared_docs`` documents common
to every client, which is what gives cooperative placement something
to win on (remote hits, single-copy storage).  At the default 0.0 the
generator draws nothing extra, so existing streams are bit-identical.

Body sizes are Pareto with alpha = 1.1, matching "the document sizes
follow the Pareto distribution with alpha = 1.1".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.model import Request


@dataclass(frozen=True)
class WisconsinConfig:
    """Parameters of one benchmark run's workload."""

    num_clients: int = 120
    requests_per_client: int = 200
    target_hit_ratio: float = 0.25
    pareto_alpha: float = 1.1
    mean_size: int = 8 * 1024
    max_size: int = 4 * 1024 * 1024
    #: How far back in its history a client re-references (recency bias).
    history_depth: int = 200
    seed: int = 1
    #: Probability that a request targets the cross-client shared pool
    #: instead of the client's private stream.  0.0 (the default)
    #: disables the pool and leaves the private streams bit-identical
    #: to earlier versions of this generator.
    shared_fraction: float = 0.0
    #: Size of the shared pool (distinct documents all clients share).
    shared_docs: int = 64

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        if self.requests_per_client < 1:
            raise ConfigurationError("requests_per_client must be >= 1")
        if not 0.0 <= self.target_hit_ratio < 1.0:
            raise ConfigurationError(
                "target_hit_ratio must be in [0, 1)"
            )
        if self.pareto_alpha <= 1.0:
            raise ConfigurationError("pareto_alpha must be > 1")
        if not 0.0 <= self.shared_fraction < 1.0:
            raise ConfigurationError(
                "shared_fraction must be in [0, 1)"
            )
        if self.shared_docs < 1:
            raise ConfigurationError("shared_docs must be >= 1")


def generate_client_streams(config: WisconsinConfig) -> List[List[Request]]:
    """Return one request list per client.

    Deterministic for a fixed config (the paper uses "the same seeds in
    the random number generators for the no-ICP and ICP experiments to
    ensure comparable results").
    """
    rng = random.Random(config.seed)
    np_rng = np.random.default_rng(config.seed)
    scale = config.mean_size * (config.pareto_alpha - 1.0) / config.pareto_alpha

    # The shared pool draws come from a *separate* generator so turning
    # the pool on (or resizing it) never perturbs the private streams,
    # and shared_fraction=0.0 draws nothing at all -- existing workloads
    # stay bit-identical.
    sharing = config.shared_fraction > 0.0
    shared_sizes: List[int] = []
    if sharing:
        shared_rng = np.random.default_rng(config.seed + 0x5A5A)
        shared_sizes = [
            max(64, int(min(s, config.max_size)))
            for s in scale
            * (1.0 + shared_rng.pareto(config.pareto_alpha, config.shared_docs))
        ]

    streams: List[List[Request]] = []
    next_doc_id = 0
    for client_id in range(config.num_clients):
        history: List[int] = []
        sizes = {}
        stream: List[Request] = []
        draws = np_rng.random(config.requests_per_client)
        pareto = scale * (
            1.0 + np_rng.pareto(config.pareto_alpha, config.requests_per_client)
        )
        if sharing:
            shared_draws = shared_rng.random(config.requests_per_client)
            shared_picks = shared_rng.integers(
                0, config.shared_docs, config.requests_per_client
            )
        for i in range(config.requests_per_client):
            if sharing and shared_draws[i] < config.shared_fraction:
                doc = int(shared_picks[i])
                stream.append(
                    Request(
                        timestamp=float(i),
                        client_id=client_id,
                        url=f"http://wpb.example.com/shared/d{doc}",
                        size=shared_sizes[doc],
                        version=0,
                    )
                )
                continue
            if history and draws[i] < config.target_hit_ratio:
                # Re-reference: recency-biased pick from own history.
                depth = min(len(history), config.history_depth)
                offset = min(int(rng.expovariate(0.25)), depth - 1)
                doc = history[-(offset + 1)]
            else:
                doc = next_doc_id
                next_doc_id += 1
                sizes[doc] = int(min(pareto[i], config.max_size))
            history.append(doc)
            stream.append(
                Request(
                    timestamp=float(i),
                    client_id=client_id,
                    url=f"http://wpb.example.com/c{client_id}/d{doc}",
                    size=max(64, sizes[doc]),
                    version=0,
                )
            )
        streams.append(stream)
    return streams
