"""Command-line interface: ``summary-cache <experiment> [options]``.

Every table and figure in the paper can be regenerated from the shell::

    summary-cache table1
    summary-cache fig1 --workload upisa
    summary-cache fig2 --workload dec --scale 2
    summary-cache table2 --hit-ratio 0.45
    summary-cache table3
    summary-cache fig4
    summary-cache representations --workload upisa   # Figs. 5-8
    summary-cache simulate --workloads nlanr upisa --jobs 4
    summary-cache table4                             # client-bound replay
    summary-cache table5                             # round-robin replay
    summary-cache scalability
    summary-cache gen-trace --workload dec --out dec.jsonl

and packed binary traces can be written once and replayed many times
in bounded memory, with the real 100-proxy Section V-F cluster run in
the discrete-event simulator::

    summary-cache trace pack --workload dec --requests 10000000 \\
        --out dec.sctr
    summary-cache trace info dec.sctr
    summary-cache trace verify dec.sctr --workload dec --proxies 16
    summary-cache trace bench --json benchmarks/BENCH_traces.json
    summary-cache dissemination --proxies 100 \\
        --policies unicast hierarchy --json benchmarks/BENCH_traces.json
    summary-cache simulate --workloads nlanr --jobs 4 --pack-dir /tmp/sctr

and a live proxy cluster can be served on localhost with any summary
representation and update policy::

    summary-cache serve --proxies 3 --summary-repr exact \\
        --update-policy threshold:0.05 --duration 60

and the proxy data plane can be load-tested with concurrent
keep-alive clients replaying the Wisconsin workload::

    summary-cache loadgen --proxies 2 --clients 16 --requests 200 \\
        --json benchmarks/BENCH_proxy.json

and cooperation policies (summary / carp owner-routing / single-copy)
swept against each other at fixed total cache size::

    summary-cache placement-bench --proxies 2 4 8 \\
        --json benchmarks/BENCH_placement.json

and a cluster's observability (live or freshly booted) can be fused
into one snapshot, traces reassembled across proxies, and the tracing
overhead A/B-measured::

    summary-cache obs cluster --json snapshot.json
    summary-cache obs trace 1f2e3d4c --targets 127.0.0.1:8081 127.0.0.1:8082
    summary-cache obs overhead --json benchmarks/BENCH_obs.json
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Any, Dict, List, Optional

from repro import experiments
from repro.analysis.tables import format_table
from repro.lint.cli import add_lint_arguments
from repro.lint.cli import run as run_lint_command
from repro.obs.export import render_json, render_prometheus
from repro.obs.logconfig import configure_logging
from repro.placement import CooperationPolicy
from repro.summaries import parse_update_policy
from repro.traces.readers import write_jsonl
from repro.traces.workloads import WORKLOAD_PRESETS, make_workload


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default="upisa",
        choices=sorted(WORKLOAD_PRESETS),
        help="synthetic workload preset (default: upisa)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default: 1.0)",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan independent simulation cells across N worker processes "
            "(default: 1, serial; results are identical either way)"
        ),
    )


def _add_summary_args(parser: argparse.ArgumentParser) -> None:
    """Flags selecting the summary representation and update policy."""
    parser.add_argument(
        "--summary-repr",
        default=None,
        choices=sorted(experiments.SUMMARY_REPR_KINDS),
        help=(
            "summary representation: bloom, exact (MD5 directory), or "
            "server-name (default: bloom for serve, full sweep for sims)"
        ),
    )
    parser.add_argument(
        "--update-policy",
        default=None,
        metavar="SPEC",
        help=(
            "update policy spec: threshold:0.01, interval:300, or "
            "packet-fill[:records] (default: threshold)"
        ),
    )


def _add_cooperation_args(parser: argparse.ArgumentParser) -> None:
    """Flags selecting the live cluster's cooperation policy."""
    parser.add_argument(
        "--cooperation",
        default="summary",
        choices=CooperationPolicy.choices(),
        help=(
            "cache cooperation policy: summary = discover remote hits "
            "via summaries and cache them locally too; carp = hash-"
            "route every miss to the object's owner proxy (one copy "
            "cluster-wide); single-copy = discover remote hits but "
            "never duplicate them (default: summary)"
        ),
    )
    parser.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="R",
        help=(
            "copies per object under owner routing -- the owner plus "
            "R-1 fallback replicas on the hash ring (default: 1)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="summary-cache",
        description=(
            "Reproduction of 'Summary Cache: A Scalable Wide-Area Web "
            "Cache Sharing Protocol' (Fan, Cao, Almeida, Broder)."
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured logging: -v for INFO, -vv for DEBUG",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="trace statistics (Table I)")
    p.add_argument("--scale", type=float, default=1.0)

    p = sub.add_parser("fig1", help="sharing-scheme hit ratios (Fig. 1)")
    _add_workload_args(p)

    p = sub.add_parser("table2", help="ICP overhead benchmark (Table II)")
    p.add_argument("--hit-ratio", type=float, default=0.25)
    p.add_argument("--clients-per-proxy", type=int, default=30)
    p.add_argument("--requests-per-client", type=int, default=200)

    p = sub.add_parser("fig2", help="update-delay sweep (Fig. 2)")
    _add_workload_args(p)

    p = sub.add_parser("table3", help="summary memory (Table III)")
    p.add_argument("--scale", type=float, default=1.0)
    _add_jobs_arg(p)
    sub.add_parser("fig4", help="false-positive curves (Fig. 4)")

    p = sub.add_parser(
        "representations", help="summary representation sweep (Figs. 5-8)"
    )
    _add_workload_args(p)
    _add_summary_args(p)
    p.add_argument("--threshold", type=float, default=0.01)
    _add_jobs_arg(p)

    p = sub.add_parser(
        "simulate",
        help=(
            "run a Fig. 5-style grid of simulation cells, optionally on "
            "worker processes (--jobs)"
        ),
    )
    p.add_argument(
        "--workloads",
        nargs="+",
        default=["nlanr"],
        choices=sorted(WORKLOAD_PRESETS),
        help="workload presets to sweep (default: nlanr)",
    )
    p.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default: 1.0)",
    )
    p.add_argument(
        "--load-factors",
        nargs="+",
        type=int,
        default=[8, 16, 32],
        metavar="LF",
        help="Bloom load factors to sweep (default: 8 16 32)",
    )
    p.add_argument(
        "--thresholds",
        nargs="+",
        type=float,
        default=[0.01],
        metavar="T",
        help="update-delay thresholds to sweep (default: 0.01)",
    )
    p.add_argument(
        "--no-icp", action="store_true",
        help="skip the per-workload ICP baseline cell",
    )
    p.add_argument(
        "--pack-dir",
        default=None,
        metavar="DIR",
        help=(
            "pack each distinct workload trace into DIR once and mmap "
            "it from every cell (pack-once/replay-many); results are "
            "bit-exact with the default regenerate-per-cell path"
        ),
    )
    _add_jobs_arg(p)

    p = sub.add_parser("table4", help="client-bound replay (Table IV)")
    _add_workload_args(p)
    p = sub.add_parser("table5", help="round-robin replay (Table V)")
    _add_workload_args(p)

    sub.add_parser(
        "scalability", help="100-proxy extrapolation (Section V-F)"
    )

    p = sub.add_parser(
        "hierarchy", help="parent/child hierarchy extension (Section VIII)"
    )
    _add_workload_args(p)

    p = sub.add_parser(
        "alternatives",
        help="summary cache vs ICP/CARP/directory-server comparison",
    )
    _add_workload_args(p)

    p = sub.add_parser(
        "metrics",
        help="replay one workload with instrumentation on and dump the registry",
    )
    _add_workload_args(p)
    _add_summary_args(p)
    p.add_argument("--threshold", type=float, default=0.01)
    p.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="exposition format (default: prom)",
    )

    p = sub.add_parser(
        "serve",
        help="run a live proxy cluster on localhost until stopped",
    )
    _add_summary_args(p)
    p.add_argument(
        "--proxies", type=int, default=3, help="cluster size (default: 3)"
    )
    p.add_argument(
        "--mode",
        default="sc-icp",
        choices=("no-icp", "icp", "sc-icp"),
        help="cooperation mode (default: sc-icp)",
    )
    _add_cooperation_args(p)
    p.add_argument(
        "--cache-mb",
        type=float,
        default=16.0,
        help="per-proxy cache size in MiB (default: 16)",
    )
    p.add_argument(
        "--origin-delay",
        type=float,
        default=0.0,
        help="simulated origin latency in seconds (default: 0)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="seconds to serve before exiting (default: until Ctrl-C)",
    )
    p.add_argument(
        "--trace-capacity",
        type=int,
        default=2048,
        metavar="N",
        help="spans retained per proxy trace ring (default: 2048)",
    )
    p.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request-scoped tracing (null span ring)",
    )

    p = sub.add_parser(
        "obs",
        help=(
            "cluster-wide observability: fused /metrics + /trace "
            "snapshots, cross-proxy traces, tracing overhead"
        ),
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    pc = obs_sub.add_parser(
        "cluster",
        help=(
            "scrape every proxy's /metrics + /trace and print the fused "
            "snapshot with false-hit attribution"
        ),
    )
    pc.add_argument(
        "--targets",
        nargs="+",
        default=None,
        metavar="HOST:PORT",
        help=(
            "proxy HTTP endpoints to scrape; omit to boot an in-process "
            "cluster, drive load through it, and scrape that"
        ),
    )
    pc.add_argument(
        "--boot",
        type=int,
        default=3,
        metavar="N",
        help="cluster size when booting in-process (default: 3)",
    )
    pc.add_argument(
        "--clients",
        type=int,
        default=8,
        help="loadgen clients for the booted cluster (default: 8)",
    )
    pc.add_argument(
        "--requests",
        type=int,
        default=100,
        help="requests per client for the booted cluster (default: 100)",
    )
    pc.add_argument("--hit-ratio", type=float, default=0.25)
    pc.add_argument("--seed", type=int, default=1)
    pc.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the fused snapshot as JSON",
    )

    pt = obs_sub.add_parser(
        "trace",
        help="print one reassembled cross-proxy trace as a span tree",
    )
    pt.add_argument("trace_id", help="8-hex-digit trace id")
    pt.add_argument(
        "--targets",
        nargs="+",
        required=True,
        metavar="HOST:PORT",
        help="proxy HTTP endpoints whose rings to search",
    )

    po = obs_sub.add_parser(
        "overhead",
        help=(
            "A/B-measure tracing overhead: identical loadgen runs on "
            "fresh clusters with tracing enabled vs disabled"
        ),
    )
    po.add_argument("--proxies", type=int, default=3)
    po.add_argument("--clients", type=int, default=8)
    po.add_argument("--requests", type=int, default=150)
    po.add_argument("--hit-ratio", type=float, default=0.25)
    po.add_argument("--seed", type=int, default=1)
    po.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "merge a tracing_overhead section into this BENCH_obs-style "
            "JSON file (existing keys are preserved)"
        ),
    )

    p = sub.add_parser(
        "loadgen",
        help=(
            "drive a live proxy cluster with concurrent Wisconsin-"
            "workload clients and report req/s + latency percentiles"
        ),
    )
    p.add_argument(
        "--proxies", type=int, default=2, help="cluster size (default: 2)"
    )
    p.add_argument(
        "--mode",
        default="sc-icp",
        choices=("no-icp", "icp", "sc-icp"),
        help="cooperation mode (default: sc-icp)",
    )
    _add_cooperation_args(p)
    p.add_argument(
        "--clients",
        type=int,
        default=16,
        help="concurrent keep-alive clients (default: 16)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=200,
        help="requests per client (default: 200)",
    )
    p.add_argument(
        "--hit-ratio",
        type=float,
        default=0.25,
        help="inherent hit ratio of each client stream (default: 0.25)",
    )
    p.add_argument(
        "--mean-size",
        type=int,
        default=8 * 1024,
        help="mean Pareto body size in bytes (default: 8192)",
    )
    p.add_argument(
        "--cache-mb",
        type=float,
        default=16.0,
        help="per-proxy cache size in MiB (default: 16)",
    )
    p.add_argument(
        "--origin-delay",
        type=float,
        default=0.0,
        help="simulated origin latency in seconds (default: 0)",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--phases",
        default="both",
        choices=("both", "baseline", "keepalive"),
        help=(
            "baseline = one connection per GET + unpooled proxies; "
            "keepalive = persistent clients + pooled proxies "
            "(default: both, printing the speedup)"
        ),
    )
    p.add_argument(
        "--shared-fraction",
        type=float,
        default=0.0,
        help=(
            "fraction of requests drawn from a cross-client shared "
            "document pool (default: 0, classic disjoint streams)"
        ),
    )
    p.add_argument(
        "--shared-docs",
        type=int,
        default=64,
        help="distinct documents in the shared pool (default: 64)",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the runs as a BENCH_proxy-style JSON record",
    )
    p.add_argument(
        "--uvloop",
        action="store_true",
        help="install uvloop before running, when available",
    )

    p = sub.add_parser(
        "placement-bench",
        help=(
            "sweep cluster size x cooperation policy over real sockets "
            "and rank aggregate hit ratio + bytes from origin"
        ),
    )
    p.add_argument(
        "--proxies",
        type=int,
        nargs="+",
        default=[2, 3, 4, 5, 6, 7, 8],
        metavar="N",
        help="cluster sizes to sweep (default: 2 3 4 5 6 7 8)",
    )
    p.add_argument(
        "--clients",
        type=int,
        default=12,
        help="concurrent clients per cell (default: 12)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=150,
        help="requests per client (default: 150)",
    )
    p.add_argument(
        "--hit-ratio",
        type=float,
        default=0.05,
        help="inherent hit ratio of each private stream (default: 0.05)",
    )
    p.add_argument(
        "--shared-fraction",
        type=float,
        default=0.55,
        help=(
            "fraction of requests drawn from the cross-client shared "
            "pool (default: 0.55, so the pool's bytes rival the total "
            "cache and duplication has a visible cost)"
        ),
    )
    p.add_argument(
        "--shared-docs",
        type=int,
        default=192,
        help="distinct documents in the shared pool (default: 192)",
    )
    p.add_argument(
        "--mean-size",
        type=int,
        default=8 * 1024,
        help="mean Pareto body size in bytes (default: 8192)",
    )
    p.add_argument(
        "--total-cache-mb",
        type=float,
        default=2.0,
        help=(
            "total cache across the cluster, split evenly over N "
            "proxies so every cell spends the same aggregate capacity "
            "(default: 2)"
        ),
    )
    p.add_argument(
        "--replication",
        type=int,
        default=1,
        metavar="R",
        help="copies per object under owner routing (default: 1)",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the sweep as a BENCH_placement-style JSON record",
    )

    p = sub.add_parser("gen-trace", help="write a synthetic trace to disk")
    _add_workload_args(p)
    p.add_argument("--out", required=True, help="output JSONL path")

    p = sub.add_parser(
        "trace",
        help=(
            "packed binary traces (.sctr): pack once, inspect, verify "
            "bit-exactness, benchmark bounded-memory replay"
        ),
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)

    tp = trace_sub.add_parser(
        "pack",
        help="stream a workload preset into a packed .sctr file",
    )
    _add_workload_args(tp)
    tp.add_argument("--seed", type=int, default=None)
    tp.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help=(
            "override the preset's request count only (clients and "
            "documents untouched) -- the long-trace knob"
        ),
    )
    tp.add_argument("--out", required=True, help="output .sctr path")

    tp = trace_sub.add_parser(
        "info", help="print a packed trace's header and statistics"
    )
    tp.add_argument("path", help=".sctr file to inspect")

    tp = trace_sub.add_parser(
        "verify",
        help=(
            "assert a packed trace is bit-exact with its regenerated "
            "workload, record by record"
        ),
    )
    tp.add_argument("path", help=".sctr file to verify")
    _add_workload_args(tp)
    tp.add_argument("--seed", type=int, default=None)
    tp.add_argument("--requests", type=int, default=None, metavar="N")
    tp.add_argument(
        "--proxies",
        type=int,
        default=None,
        metavar="N",
        help=(
            "additionally replay both sources through the N-proxy "
            "summary-sharing simulator and compare every counter"
        ),
    )

    tp = trace_sub.add_parser(
        "bench",
        help=(
            "measure pack/scan throughput and bounded-memory replay "
            "(peak RSS in spawned subprocesses)"
        ),
    )
    _add_workload_args(tp)
    tp.add_argument("--seed", type=int, default=None)
    tp.add_argument(
        "--requests",
        type=int,
        default=10_000_000,
        metavar="N",
        help="length of the long packed trace (default: 10^7)",
    )
    tp.add_argument(
        "--rss-requests",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help=(
            "trace lengths for the RSS flatness ladder (default: "
            "requests/10 and requests)"
        ),
    )
    tp.add_argument(
        "--exact-requests",
        type=int,
        default=100_000,
        metavar="N",
        help="length of the bit-exactness cross-check (default: 10^5)",
    )
    tp.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for the packed files (default: a temporary "
            "directory, removed afterwards)"
        ),
    )
    tp.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "merge the results into this BENCH_traces-style JSON file "
            "under the 'trace_engine' key"
        ),
    )

    p = sub.add_parser(
        "dissemination",
        help=(
            "run the real Section V-F cluster in the DES: N proxies, "
            "summary dissemination policy as the axis, measured vs "
            "extrapolated overheads"
        ),
    )
    _add_workload_args(p)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="override the preset's request count",
    )
    p.add_argument(
        "--proxies",
        type=int,
        default=100,
        help="cluster size (default: 100, the paper's Section V-F)",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        default=None,
        choices=("unicast", "hierarchy"),
        help="dissemination policies to run (default: both)",
    )
    p.add_argument(
        "--fanout",
        type=int,
        default=4,
        help="relay fan-out for the hierarchy policy (default: 4)",
    )
    p.add_argument(
        "--cache-mb",
        type=float,
        default=8.0,
        help="per-proxy cache size in MiB (default: 8)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.01,
        help="summary update threshold (default: 0.01)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "replay this packed .sctr instead of packing the workload "
            "into a temporary file"
        ),
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help=(
            "merge the results into this BENCH_traces-style JSON file "
            "under the 'dissemination' key"
        ),
    )

    p = sub.add_parser(
        "lint",
        help="run the sc-lint static-analysis suite (SC001..SC009)",
    )
    add_lint_arguments(p)

    p = sub.add_parser(
        "sanitize-run",
        help=(
            "boot a live cluster with the interleaving sanitizer armed, "
            "drive concurrent load, and report any races detected"
        ),
    )
    p.add_argument(
        "--proxies", type=int, default=3, help="cluster size (default: 3)"
    )
    p.add_argument(
        "--mode",
        default="sc-icp",
        choices=("no-icp", "icp", "sc-icp"),
        help="cooperation mode (default: sc-icp)",
    )
    _add_cooperation_args(p)
    p.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent keep-alive clients (default: 8)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=100,
        help="requests per client (default: 100)",
    )
    p.add_argument(
        "--shared-fraction",
        type=float,
        default=0.5,
        help=(
            "fraction of requests drawn from a cross-client shared "
            "pool -- high sharing maximises interleaving on the same "
            "objects (default: 0.5)"
        ),
    )
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--rate",
        type=float,
        default=0.5,
        help="perturbation yield probability (default: 0.5)",
    )

    return parser


def _summary_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    """``representations()``/``metrics_snapshot()`` kwargs from CLI flags."""
    kwargs = {}
    if args.summary_repr is not None:
        kwargs["representation"] = experiments.SUMMARY_REPR_KINDS[
            args.summary_repr
        ]
    if args.update_policy is not None:
        kwargs["update_policy"] = parse_update_policy(args.update_policy)
    return kwargs


async def _serve(args: argparse.Namespace) -> int:
    """Run a live cluster, print its endpoints, wait for the deadline."""
    from repro.proxy.cluster import ProxyCluster
    from repro.proxy.config import ProxyConfig, ProxyMode

    summary = experiments.summary_config_for_repr(
        args.summary_repr or "bloom"
    )
    policy = (
        parse_update_policy(args.update_policy)
        if args.update_policy
        else None
    )
    async with ProxyCluster(
        num_proxies=args.proxies,
        mode=ProxyMode(args.mode),
        cache_capacity=int(args.cache_mb * 1024 * 1024),
        origin_delay=args.origin_delay,
        base_config=ProxyConfig(
            trace_capacity=args.trace_capacity,
            trace_enabled=not args.no_trace,
        ),
        summary=summary,
        update_policy=policy,
        cooperation=args.cooperation,
        replication=args.replication,
    ) as cluster:
        print(
            f"origin http://{cluster.origin.address[0]}:"
            f"{cluster.origin.address[1]}"
        )
        for proxy in cluster.proxies:
            print(
                f"{proxy.config.name} mode={proxy.config.mode.value} "
                f"cooperation={proxy.config.cooperation.value} "
                f"summary={proxy.config.summary.kind} "
                f"http=http://{proxy.config.host}:{proxy.http_port} "
                f"icp=udp://{proxy.config.host}:{proxy.icp_port} "
                f"(metrics at /metrics, spans at /trace)"
            )
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                print("serving until Ctrl-C ...", flush=True)
                while True:
                    await asyncio.sleep(3600)
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
    return 0


def _parse_targets(specs: List[str]) -> List[tuple]:
    """``HOST:PORT`` strings to ``(host, port)`` scrape targets."""
    from repro.errors import ConfigurationError

    targets = []
    for spec in specs:
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            raise ConfigurationError(
                f"scrape target {spec!r} is not HOST:PORT"
            )
        targets.append((host or "127.0.0.1", int(port)))
    return targets


async def _obs_cluster(args: argparse.Namespace) -> int:
    """Scrape a cluster (live or freshly booted) and print the fusion.

    The booted path drives two workloads: concurrent Wisconsin loadgen
    (per-client working sets, exercising the keep-alive data plane) and
    a shared-document synthetic replay (cross-client sharing, so the
    SC-ICP paths -- DIRUPDATEs, query rounds, remote hits, false hits
    -- actually appear in the fused snapshot).
    """
    import json as json_module

    from repro.benchmarkkit.loadgen import LoadGenConfig, run_loadgen
    from repro.obs.cluster import render_cluster, scrape_cluster
    from repro.proxy.cluster import ProxyCluster
    from repro.proxy.config import ProxyConfig, ProxyMode
    from repro.summaries import SummaryConfig
    from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

    if args.targets:
        snapshot = await scrape_cluster(_parse_targets(args.targets))
    else:
        config = LoadGenConfig(
            clients=args.clients,
            requests_per_client=args.requests,
            target_hit_ratio=args.hit_ratio,
            seed=args.seed,
        )
        shared = generate_trace(
            SyntheticTraceConfig(
                name="obs-smoke",
                num_requests=args.clients * args.requests,
                num_clients=args.clients,
                num_documents=max(50, args.requests),
                mean_size=1024,
                max_size=32 * 1024,
                mod_probability=0.0,
                seed=args.seed,
            )
        )
        async with ProxyCluster(
            num_proxies=args.boot,
            mode=ProxyMode.SC_ICP,
            cache_capacity=4 * 1024 * 1024,
            base_config=ProxyConfig(
                summary=SummaryConfig(kind="bloom", load_factor=8),
                expected_doc_size=1024,
                update_threshold=0.01,
            ),
        ) as cluster:
            await run_loadgen(
                cluster.targets(),
                config,
                label="obs-smoke",
                proxies=cluster.proxies,
            )
            await cluster.replay(shared, assignment="round-robin")
            snapshot = await cluster.snapshot()
    print(render_cluster(snapshot))
    if args.json:
        import os

        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json_module.dump(snapshot.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


async def _obs_trace(args: argparse.Namespace) -> int:
    """Reassemble and print one trace from the targets' span rings."""
    from repro.obs.cluster import render_trace, scrape_cluster

    snapshot = await scrape_cluster(_parse_targets(args.targets))
    spans = snapshot.trace(args.trace_id)
    print(render_trace(spans))
    return 0 if spans else 1


async def _obs_overhead(args: argparse.Namespace) -> int:
    """A/B the data plane with tracing enabled vs disabled.

    Both phases replay the identical Wisconsin workload on a *fresh*
    cluster; only ``trace_enabled`` differs, so the req/s delta is the
    cost of span bookkeeping and context propagation on the full
    request path.  (The bloom probe/insert microbenchmark bounds the
    disabled-path cost separately -- see ``benchmarks/BENCH_obs.json``.)
    """
    import json as json_module
    import os

    from repro.benchmarkkit.loadgen import (
        LoadGenConfig,
        render_comparison,
        run_loadgen,
    )
    from repro.proxy.cluster import ProxyCluster
    from repro.proxy.config import ProxyConfig, ProxyMode

    config = LoadGenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        target_hit_ratio=args.hit_ratio,
        seed=args.seed,
    )
    results = []
    for label, enabled in (
        ("tracing_disabled", False),
        ("tracing_enabled", True),
    ):
        async with ProxyCluster(
            num_proxies=args.proxies,
            mode=ProxyMode.SC_ICP,
            base_config=ProxyConfig(trace_enabled=enabled),
        ) as cluster:
            results.append(
                await run_loadgen(
                    cluster.targets(),
                    config,
                    label=label,
                    proxies=cluster.proxies,
                )
            )
        print(render_comparison(results[-1:]), flush=True)
    disabled, enabled_run = results
    overhead = 0.0
    if disabled.requests_per_second > 0:
        overhead = (
            1
            - enabled_run.requests_per_second
            / disabled.requests_per_second
        ) * 100
    print(
        f"tracing overhead: {overhead:.1f}% requests/sec "
        f"({enabled_run.requests_per_second:,.0f} enabled vs "
        f"{disabled.requests_per_second:,.0f} disabled)"
    )
    if args.json:
        record = {}
        if os.path.exists(args.json):
            with open(args.json, "r", encoding="utf-8") as fh:
                record = json_module.load(fh)
        record["tracing_overhead"] = {
            "method": (
                "summary-cache obs overhead: identical Wisconsin "
                "loadgen runs on fresh clusters, trace_enabled=False "
                "then True; overhead is the relative req/s drop. "
                f"proxies={args.proxies} clients={args.clients} "
                f"requests={args.requests} seed={args.seed}."
            ),
            "enabled_requests_per_second": round(
                enabled_run.requests_per_second, 1
            ),
            "disabled_requests_per_second": round(
                disabled.requests_per_second, 1
            ),
            "overhead_percent": round(overhead, 2),
            "cache_sources_identical": (
                disabled.cache_sources == enabled_run.cache_sources
            ),
        }
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json_module.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"updated {args.json}")
    return 0


async def _loadgen(args: argparse.Namespace) -> int:
    """Measure req/s + latency of a live cluster under concurrent load.

    Runs up to two phases on *fresh* clusters so no phase warms the
    caches for the next:

    - ``baseline_per_connection``: one TCP connection per GET and
      ``pool_size=0`` proxies (the pre-keep-alive data plane);
    - ``keepalive_pooled``: persistent client connections and pooled
      origin/peer fetches.

    Cache behaviour is identical in both (same per-client URL streams),
    so the speedup line isolates connection handling.
    """
    from dataclasses import replace

    from repro.benchmarkkit.loadgen import (
        LoadGenConfig,
        LoadGenResult,
        render_comparison,
        results_to_json,
        run_loadgen,
    )
    from repro.proxy.client import ClientDriver
    from repro.proxy.cluster import ProxyCluster
    from repro.proxy.config import ProxyConfig, ProxyMode

    config = LoadGenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        target_hit_ratio=args.hit_ratio,
        mean_size=args.mean_size,
        seed=args.seed,
        keep_alive=True,
        shared_fraction=args.shared_fraction,
        shared_docs=args.shared_docs,
    )
    phases = []
    if args.phases in ("both", "baseline"):
        phases.append(
            (
                "baseline_per_connection",
                replace(config, keep_alive=False),
                replace(ProxyConfig(), pool_size=0),
            )
        )
    if args.phases in ("both", "keepalive"):
        phases.append(("keepalive_pooled", config, ProxyConfig()))

    # One driver per concurrent client for the whole run; each phase
    # rebinds them to its fresh cluster's ports (which resets their
    # per-phase reports) instead of rebuilding the fleet.
    drivers = [ClientDriver("127.0.0.1", 0) for _ in range(config.clients)]
    results: List[LoadGenResult] = []
    for label, phase_config, base_config in phases:
        async with ProxyCluster(
            num_proxies=args.proxies,
            mode=ProxyMode(args.mode),
            cache_capacity=int(args.cache_mb * 1024 * 1024),
            origin_delay=args.origin_delay,
            base_config=base_config,
            cooperation=args.cooperation,
            replication=args.replication,
        ) as cluster:
            targets = [
                (proxy.config.host, proxy.http_port)
                for proxy in cluster.proxies
            ]
            result = await run_loadgen(
                targets,
                phase_config,
                label=label,
                proxies=cluster.proxies,
                origin=cluster.origin,
                drivers=drivers,
            )
        results.append(result)
        print(render_comparison([result]), flush=True)
    if len(results) == 2:
        print(render_comparison(results).splitlines()[-1])
    if args.json:
        import os

        record = results_to_json(
            results,
            benchmark="proxy_loadgen",
            description=(
                "Proxy data-plane throughput for the keep-alive rework: "
                "the Wisconsin workload replayed by concurrent no-think-"
                "time clients against a live cluster, one-connection-per-"
                "GET + unpooled proxies (baseline_per_connection) vs "
                "persistent client connections + pooled origin/peer "
                "fetches (keepalive_pooled). Identical cache_sources "
                "across runs demonstrate cache behaviour is unchanged; "
                "only connection handling differs."
            ),
            host_cpu_count=os.cpu_count(),
            method=(
                "summary-cache loadgen --proxies "
                f"{args.proxies} --mode {args.mode} --clients "
                f"{args.clients} --requests {args.requests} --seed "
                f"{args.seed}; each phase runs on a fresh in-process "
                "cluster (OS-assigned ports, synthetic origin) so no "
                "phase warms caches for the next. Latency percentiles "
                "are exact client-side samples; proxy_phase_* are "
                "bucket-interpolated from the proxies' "
                "proxy_request_phase_seconds histograms. Single run; "
                "wall-clock swings +/-10-20% between runs on a small "
                "container, the speedup ratio is stable."
            ),
            proxies=args.proxies,
            mode=args.mode,
            cooperation=args.cooperation,
            replication=args.replication,
            clients=args.clients,
            requests_per_client=args.requests,
            target_hit_ratio=args.hit_ratio,
            shared_fraction=args.shared_fraction,
            seed=args.seed,
        )
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(record + "\n")
        print(f"wrote {args.json}")
    return 0


async def _sanitize_run(args: argparse.Namespace) -> int:
    """Boot a sanitized cluster, drive load, report interleavings.

    Exit codes: 0 no violations, 1 violations detected, 2 setup error.
    """
    import os

    from repro.benchmarkkit.loadgen import LoadGenConfig, run_loadgen
    from repro.proxy.cluster import ProxyCluster
    from repro.proxy.config import ProxyConfig, ProxyMode
    from repro.sanitizer import ENV_FLAG, ENV_SEED, default_sanitizer
    from repro.sanitizer.core import ENV_RATE

    # The proxies pick the sanitizer up from the environment at
    # construction (default_sanitizer), so arm it before the cluster.
    os.environ[ENV_FLAG] = "1"
    os.environ[ENV_SEED] = str(args.seed)
    os.environ[ENV_RATE] = str(args.rate)
    sanitizer = default_sanitizer()
    if sanitizer is None:  # pragma: no cover - env set two lines up
        print("sanitize-run: error: could not arm the sanitizer")
        return 2

    config = LoadGenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        target_hit_ratio=0.25,
        seed=args.seed,
        keep_alive=True,
        shared_fraction=args.shared_fraction,
    )
    async with ProxyCluster(
        num_proxies=args.proxies,
        mode=ProxyMode(args.mode),
        base_config=ProxyConfig(),
        cooperation=args.cooperation,
        replication=args.replication,
    ) as cluster:
        targets = [
            (proxy.config.host, proxy.http_port)
            for proxy in cluster.proxies
        ]
        result = await run_loadgen(
            targets,
            config,
            label="sanitize",
            proxies=cluster.proxies,
            origin=cluster.origin,
        )
    violations = sanitizer.drain()
    total = args.clients * args.requests
    print(
        f"sanitize-run: {total} requests over {args.proxies} proxies "
        f"({result.requests} done, {result.errors} error(s)), "
        f"{sanitizer.yields} perturbation yield(s), "
        f"{len(violations)} violation(s)"
    )
    for violation in violations:
        print(f"  {violation.render()}")
    return 1 if violations else 0


async def _placement_bench(args: argparse.Namespace) -> int:
    """Sweep cluster size x cooperation policy over real sockets.

    Every cell replays the same shared-pool Wisconsin workload against
    a fresh cluster whose *total* cache size is fixed (each of the N
    proxies holds 1/N of it), so the sweep isolates how each
    cooperation policy spends the same aggregate capacity: summary
    duplicates every remote hit into the requesting proxy, carp routes
    misses to the hash owner and keeps one copy cluster-wide,
    single-copy discovers remote hits without copying them.
    """
    import json as json_module
    import os

    from repro.benchmarkkit.loadgen import LoadGenConfig, run_loadgen
    from repro.proxy.cluster import ProxyCluster
    from repro.proxy.config import ProxyMode

    config = LoadGenConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        target_hit_ratio=args.hit_ratio,
        mean_size=args.mean_size,
        seed=args.seed,
        shared_fraction=args.shared_fraction,
        shared_docs=args.shared_docs,
    )
    policies = (
        CooperationPolicy.SUMMARY,
        CooperationPolicy.CARP,
        CooperationPolicy.SINGLE_COPY,
    )
    runs: List[Dict[str, Any]] = []
    rows: List[tuple] = []
    for num_proxies in args.proxies:
        cache_per_proxy = int(
            args.total_cache_mb * 1024 * 1024 / num_proxies
        )
        for policy in policies:
            # Owner routing replaces discovery outright, so carp runs
            # without summaries; the discovery policies need them.
            mode = (
                ProxyMode.NO_ICP
                if policy.routes_by_owner
                else ProxyMode.SC_ICP
            )
            async with ProxyCluster(
                num_proxies=num_proxies,
                mode=mode,
                cache_capacity=cache_per_proxy,
                cooperation=policy,
                replication=args.replication,
            ) as cluster:
                result = await run_loadgen(
                    cluster.targets(),
                    config,
                    label=f"{policy.value}_n{num_proxies}",
                    proxies=cluster.proxies,
                    origin=cluster.origin,
                )
                stats = [proxy.stats for proxy in cluster.proxies]
            http_requests = sum(s.http_requests for s in stats)
            hits = sum(s.local_hits + s.remote_hits for s in stats)
            hit_ratio = hits / http_requests if http_requests else 0.0
            record = result.to_dict()
            record.update(
                proxies=num_proxies,
                cooperation=policy.value,
                mode=mode.value,
                cache_per_proxy_bytes=cache_per_proxy,
                aggregate_hit_ratio=round(hit_ratio, 4),
            )
            runs.append(record)
            rows.append(
                (
                    str(num_proxies),
                    policy.value,
                    f"{hit_ratio:.3f}",
                    f"{result.bytes_from_origin:,}",
                    str(result.origin_requests),
                    str(result.peer_fetches),
                    f"{result.errors}",
                )
            )
            print(
                f"n={num_proxies} {policy.value}: "
                f"hit-ratio {hit_ratio:.3f}, "
                f"bytes-from-origin {result.bytes_from_origin:,}",
                flush=True,
            )
    headers = (
        "N",
        "cooperation",
        "hit-ratio",
        "origin-bytes",
        "origin-req",
        "peer-fetch",
        "errors",
    )
    print(
        format_table(
            headers,
            rows,
            title=(
                f"Placement sweep (total cache {args.total_cache_mb:g} "
                f"MiB, shared fraction {args.shared_fraction:g})"
            ),
        )
    )
    by_cell = {(r["proxies"], r["cooperation"]): r for r in runs}
    comparison: Dict[str, Any] = {}
    for num_proxies in args.proxies:
        carp = by_cell.get((num_proxies, "carp"))
        summary = by_cell.get((num_proxies, "summary"))
        if carp is None or summary is None:
            continue
        comparison[str(num_proxies)] = {
            "carp_bytes_from_origin": carp["bytes_from_origin"],
            "summary_bytes_from_origin": summary["bytes_from_origin"],
            "carp_saves_origin_bytes": (
                carp["bytes_from_origin"] < summary["bytes_from_origin"]
            ),
        }
        verdict = (
            "beats"
            if carp["bytes_from_origin"] < summary["bytes_from_origin"]
            else "does NOT beat"
        )
        print(
            f"carp {verdict} summary at N={num_proxies}: "
            f"{carp['bytes_from_origin']:,} vs "
            f"{summary['bytes_from_origin']:,} bytes from origin"
        )
    if args.json:
        payload = {
            "benchmark": "placement",
            "description": (
                "Aggregate hit ratio and bytes-from-origin for "
                "cooperation policies on a live cluster: the shared-"
                "pool Wisconsin workload replayed by concurrent "
                "clients over real sockets, total cache size held "
                "constant while N and the policy vary.  summary "
                "caches remote hits locally (duplicates), carp hash-"
                "routes misses to one owner copy, single-copy "
                "discovers remote hits without duplicating them."
            ),
            "method": (
                "summary-cache placement-bench --proxies "
                + " ".join(str(n) for n in args.proxies)
                + f" --clients {args.clients} --requests "
                f"{args.requests} --hit-ratio {args.hit_ratio:g} "
                f"--shared-fraction {args.shared_fraction:g} "
                f"--shared-docs {args.shared_docs} --total-cache-mb "
                f"{args.total_cache_mb:g} --seed {args.seed}; each "
                "cell is a fresh in-process cluster (OS-assigned "
                "ports, synthetic origin) replaying the identical "
                "workload; carp cells run mode=no-icp (owner routing "
                "needs no summaries), discovery cells run mode=sc-icp. "
                "bytes_from_origin is the origin server's served-body "
                "delta over the run."
            ),
            "host_cpu_count": os.cpu_count(),
            "total_cache_mb": args.total_cache_mb,
            "clients": args.clients,
            "requests_per_client": args.requests,
            "target_hit_ratio": args.hit_ratio,
            "shared_fraction": args.shared_fraction,
            "shared_docs": args.shared_docs,
            "mean_size": args.mean_size,
            "replication": args.replication,
            "seed": args.seed,
            "runs": runs,
            "carp_vs_summary": comparison,
        }
        parent = os.path.dirname(args.json)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json_module.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _merge_bench_json(path: str, key: str, section: Dict[str, Any]) -> None:
    """Merge *section* under *key* into the JSON document at *path*.

    ``trace bench`` and ``dissemination`` both contribute to
    ``BENCH_traces.json``; each rewrites only its own key so the two
    commands can run in either order (or separately in CI) without
    clobbering each other's numbers.
    """
    import json as json_module
    import os

    payload: Dict[str, Any] = {
        "benchmark": "traces",
        "description": (
            "Streaming trace engine: packed binary traces "
            "(struct records + URL string table), mmap-backed "
            "bounded-memory replay, and the measured Section V-F "
            "cluster run with summary dissemination as an axis."
        ),
    }
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                existing = json_module.load(fh)
            if isinstance(existing, dict):
                payload.update(existing)
        except (OSError, ValueError):
            pass
    payload[key] = section
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json_module.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {path} ({key})")


def _trace_pack(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.traces.workloads import pack_workload

    start = perf_counter()
    records, groups = pack_workload(
        args.workload,
        args.out,
        scale=args.scale,
        seed=args.seed,
        num_requests=args.requests,
    )
    elapsed = perf_counter() - start
    rate = records / elapsed if elapsed > 0 else 0.0
    print(
        f"packed {records:,} requests ({groups} proxy groups) to "
        f"{args.out} in {elapsed:.2f}s ({rate:,.0f} records/s)"
    )
    return 0


def _trace_info(args: argparse.Namespace) -> int:
    import os

    from repro.traces.binary import (
        TRACE_FORMAT_VERSION,
        BinaryTraceReader,
    )

    with BinaryTraceReader(args.path) as reader:
        rows = [
            ("name", reader.name),
            ("format version", str(TRACE_FORMAT_VERSION)),
            ("records", f"{len(reader):,}"),
            ("distinct URLs", f"{len(reader.urls()):,}"),
            ("distinct clients", f"{len(reader.clients()):,}"),
            ("duration (s)", f"{reader.duration:.1f}"),
            ("file size (bytes)", f"{os.path.getsize(args.path):,}"),
            (
                "bytes/record",
                f"{os.path.getsize(args.path) / max(1, len(reader)):.1f}",
            ),
        ]
    print(format_table(("field", "value"), rows, title=args.path))
    return 0


def _trace_verify(args: argparse.Namespace) -> int:
    """Record-by-record comparison against the regenerated workload."""
    from repro.traces.binary import BinaryTraceReader
    from repro.traces.synthetic import iter_requests
    from repro.traces.workloads import workload_config

    config, groups = workload_config(
        args.workload,
        scale=args.scale,
        seed=args.seed,
        num_requests=args.requests,
    )
    checked = 0
    with BinaryTraceReader(args.path) as reader:
        stream = iter(iter_requests(config))
        for packed in reader:
            expected = next(stream, None)
            if packed != expected:
                print(
                    f"MISMATCH at record {checked}: packed {packed!r} "
                    f"!= generated {expected!r}"
                )
                return 1
            checked += 1
        leftover = next(stream, None)
        if leftover is not None:
            print(
                f"MISMATCH: packed trace ends at {checked} records but "
                f"the generator continues ({leftover!r})"
            )
            return 1
    print(f"OK: {checked:,} records bit-exact with {args.workload} "
          f"(scale {args.scale:g})")
    if args.proxies is not None:
        from repro.benchmarkkit.tracebench import bit_exact_check

        outcome = bit_exact_check(
            args.workload,
            args.path,
            scale=args.scale,
            seed=args.seed,
            num_requests=args.requests,
        )
        if not outcome["bit_exact"]:
            print(
                "MISMATCH: streamed replay diverged from in-memory "
                f"replay ({outcome})"
            )
            return 1
        print(
            f"OK: {args.proxies}-proxy summary-sharing replay "
            f"bit-exact (hit ratio {outcome['streamed_hit_ratio']:g})"
        )
    return 0


def _trace_bench(args: argparse.Namespace) -> int:
    """Pack/scan throughput + the spawn-isolated RSS flatness ladder."""
    import os
    import shutil
    import tempfile

    from repro.benchmarkkit.tracebench import (
        bench_pack,
        bench_scan,
        bit_exact_check,
        measure_replay_rss,
    )
    from repro.traces.workloads import workload_config

    directory = args.dir or tempfile.mkdtemp(prefix="sctr-bench-")
    os.makedirs(directory, exist_ok=True)
    _, groups = workload_config(args.workload, scale=args.scale,
                                seed=args.seed)
    rss_lengths = args.rss_requests or [
        max(1, args.requests // 10), args.requests
    ]
    section: Dict[str, Any] = {
        "workload": args.workload,
        "scale": args.scale,
        "requests": args.requests,
        "rss_requests": rss_lengths,
        "exact_requests": args.exact_requests,
    }
    try:
        long_path = os.path.join(
            directory, f"{args.workload}-{args.requests}.sctr"
        )
        print(f"packing {args.requests:,} requests ...", flush=True)
        pack = bench_pack(
            args.workload,
            long_path,
            scale=args.scale,
            seed=args.seed,
            num_requests=args.requests,
        )
        section["pack"] = pack
        print(
            f"  {pack['pack_records_per_second']:,} records/s, "
            f"{pack['file_bytes']:,} bytes "
            f"({pack['bytes_per_record']} B/record)"
        )
        scan = bench_scan(long_path)
        section["scan"] = scan
        print(f"  scan: {scan['scan_records_per_second']:,} records/s")

        ladder = []
        for length in rss_lengths:
            if length == args.requests:
                path = long_path
            else:
                path = os.path.join(
                    directory, f"{args.workload}-{length}.sctr"
                )
                bench_pack(
                    args.workload,
                    path,
                    scale=args.scale,
                    seed=args.seed,
                    num_requests=length,
                )
            entry = measure_replay_rss(path, mode="stream", groups=groups)
            entry["trace_requests"] = length
            ladder.append(entry)
            print(
                f"  streamed replay of {length:,}: peak RSS "
                f"{entry['peak_rss_bytes'] / (1 << 20):.1f} MiB, "
                f"{entry['replay_records_per_second']:,} records/s",
                flush=True,
            )
        section["streamed_rss"] = ladder
        if len(ladder) >= 2:
            first, last = ladder[0], ladder[-1]
            growth = last["peak_rss_bytes"] / max(1, first["peak_rss_bytes"])
            length_growth = (
                last["trace_requests"] / max(1, first["trace_requests"])
            )
            section["rss_growth_ratio"] = round(growth, 3)
            section["trace_length_growth_ratio"] = round(length_growth, 3)
            print(
                f"  RSS grew {growth:.2f}x while the trace grew "
                f"{length_growth:.0f}x"
            )

        exact_path = os.path.join(
            directory, f"{args.workload}-{args.exact_requests}.sctr"
        )
        bench_pack(
            args.workload,
            exact_path,
            scale=args.scale,
            seed=args.seed,
            num_requests=args.exact_requests,
        )
        materialized = measure_replay_rss(
            exact_path, mode="materialized", groups=groups
        )
        materialized["trace_requests"] = args.exact_requests
        section["materialized_rss"] = materialized
        print(
            f"  materialized replay of {args.exact_requests:,}: peak RSS "
            f"{materialized['peak_rss_bytes'] / (1 << 20):.1f} MiB"
        )
        exact = bit_exact_check(
            args.workload,
            exact_path,
            scale=args.scale,
            seed=args.seed,
            num_requests=args.exact_requests,
        )
        section["bit_exact"] = exact
        status = "bit-exact" if exact["bit_exact"] else "DIVERGED"
        print(
            f"  streamed vs in-memory replay at "
            f"{args.exact_requests:,}: {status}"
        )
        if not exact["bit_exact"]:
            return 1
    finally:
        if args.dir is None:
            shutil.rmtree(directory, ignore_errors=True)
    if args.json:
        _merge_bench_json(args.json, "trace_engine", section)
    return 0


def _trace_command(args: argparse.Namespace) -> int:
    handler = {
        "pack": _trace_pack,
        "info": _trace_info,
        "verify": _trace_verify,
        "bench": _trace_bench,
    }[args.trace_command]
    return handler(args)


def _dissemination(args: argparse.Namespace) -> int:
    """The measured Section V-F run, one cell per dissemination policy."""
    import os
    import shutil
    import tempfile

    from repro.simulation.scale import (
        DISSEMINATION_POLICIES,
        run_scale_experiment,
    )
    from repro.traces.binary import BinaryTraceReader
    from repro.traces.workloads import pack_workload

    policies = tuple(args.policies or DISSEMINATION_POLICIES)
    tempdir = None
    if args.trace is not None:
        trace_path = args.trace
    else:
        tempdir = tempfile.mkdtemp(prefix="sctr-scale-")
        trace_path = os.path.join(tempdir, f"{args.workload}.sctr")
        records, _ = pack_workload(
            args.workload,
            trace_path,
            scale=args.scale,
            seed=args.seed,
            num_requests=args.requests,
        )
        print(f"packed {records:,} requests for the run", flush=True)
    cache_bytes = int(args.cache_mb * 1024 * 1024)
    runs: List[Dict[str, Any]] = []
    rows: List[tuple] = []
    try:
        with BinaryTraceReader(trace_path) as reader:
            for policy in policies:
                result = run_scale_experiment(
                    reader,
                    num_proxies=args.proxies,
                    dissemination=policy,
                    fanout=args.fanout,
                    cache_capacity=cache_bytes,
                    update_threshold=args.threshold,
                )
                runs.append(result.to_dict())
                rows.append(
                    (
                        policy,
                        f"{result.hit_ratio:.3f}",
                        f"{result.false_hit_ratio:.4f}",
                        f"{result.update_messages:,}",
                        f"{result.update_messages_per_request:.3f}",
                        f"{result.sender_max_dirupdates:,}",
                        f"{result.peak_rss_bytes / (1 << 20):.0f}",
                        f"{result.wall_seconds:.1f}",
                    )
                )
                print(
                    f"{policy}: {result.requests:,} requests, "
                    f"hit ratio {result.hit_ratio:.3f}, "
                    f"{result.update_messages:,} update messages "
                    f"(busiest sender {result.sender_max_dirupdates:,})",
                    flush=True,
                )
    finally:
        if tempdir is not None:
            shutil.rmtree(tempdir, ignore_errors=True)
    headers = (
        "policy",
        "hit-ratio",
        "false-hit",
        "updates",
        "upd/req",
        "max-sender",
        "RSS-MiB",
        "wall-s",
    )
    print(
        format_table(
            headers,
            rows,
            title=(
                f"Section V-F measured: {args.proxies} proxies "
                f"({args.workload}, threshold {args.threshold:g})"
            ),
        )
    )
    predicted = runs[0].get("predicted", {}) if runs else {}
    if predicted:
        measured = runs[0]
        print(
            "extrapolation check (unadjusted Section V-F model at this "
            "geometry):"
        )
        for key in (
            "update_messages_per_request",
            "protocol_messages_per_request",
        ):
            if key in predicted:
                print(
                    f"  {key}: predicted {predicted[key]:.4f}, "
                    f"measured {measured[key]:.4f}"
                )
        print(
            f"  summary_memory_bytes: predicted "
            f"{predicted.get('summary_memory_bytes', 0):,}, measured "
            f"{measured['summary_memory_bytes']:,}"
        )
    if args.json:
        section = {
            "num_proxies": args.proxies,
            "workload": args.workload,
            "scale": args.scale,
            "requests": args.requests,
            "cache_mb": args.cache_mb,
            "threshold": args.threshold,
            "fanout": args.fanout,
            "runs": runs,
        }
        _merge_bench_json(args.json, "dissemination", section)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)

    if args.command == "table1":
        headers, rows = experiments.table1(scale=args.scale)
        print(format_table(headers, rows, title="Table I: trace statistics"))
    elif args.command == "fig1":
        headers, rows = experiments.fig1(args.workload, scale=args.scale)
        print(
            format_table(
                headers,
                rows,
                title=f"Fig. 1: hit ratios under sharing schemes ({args.workload})",
            )
        )
    elif args.command == "table2":
        headers, rows = experiments.table2(
            target_hit_ratio=args.hit_ratio,
            clients_per_proxy=args.clients_per_proxy,
            requests_per_client=args.requests_per_client,
        )
        print(
            format_table(
                headers,
                rows,
                title=f"Table II: ICP overhead (inherent hit ratio {args.hit_ratio:g})",
            )
        )
    elif args.command == "fig2":
        headers, rows = experiments.fig2(args.workload, scale=args.scale)
        print(
            format_table(
                headers,
                rows,
                title=f"Fig. 2: update delay impact ({args.workload})",
            )
        )
    elif args.command == "table3":
        headers, rows = experiments.table3(scale=args.scale, jobs=args.jobs)
        print(
            format_table(headers, rows, title="Table III: summary memory")
        )
    elif args.command == "fig4":
        headers, rows = experiments.fig4()
        print(
            format_table(
                headers, rows, title="Fig. 4: false positive probability"
            )
        )
    elif args.command == "representations":
        results = experiments.representations(
            args.workload,
            scale=args.scale,
            threshold=args.threshold,
            jobs=args.jobs,
            **_summary_overrides(args),
        )
        headers, rows = experiments.representation_rows(results)
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Figs. 5-8: summary representations ({args.workload}, "
                    f"threshold {args.threshold:g})"
                ),
            )
        )
    elif args.command == "simulate":
        from repro.simulation.parallel import (
            fig5_grid,
            pack_grid_traces,
            run_cells,
        )

        cells = fig5_grid(
            args.workloads,
            load_factors=args.load_factors,
            thresholds=args.thresholds,
            include_icp=not args.no_icp,
            scale=args.scale,
        )
        if args.pack_dir:
            cells = pack_grid_traces(cells, args.pack_dir)
        results = run_cells(cells, jobs=args.jobs)
        headers = (
            "cell", "total-HR", "false-hit", "msgs/req", "bytes/req",
        )
        rows = [
            (
                cell.label(),
                f"{r.total_hit_ratio:.3f}",
                f"{r.false_hit_ratio:.4f}",
                f"{r.messages_per_request:.3f}",
                f"{r.message_bytes_per_request:.0f}",
            )
            for cell, r in zip(cells, results)
        ]
        print(
            format_table(
                headers,
                rows,
                title=(
                    f"Simulation grid ({len(cells)} cells, "
                    f"jobs={args.jobs})"
                ),
            )
        )
    elif args.command in ("table4", "table5"):
        assignment = (
            "client-bound" if args.command == "table4" else "round-robin"
        )
        headers, rows = experiments.table45(
            assignment=assignment, workload=args.workload, scale=args.scale
        )
        label = "IV" if args.command == "table4" else "V"
        print(
            format_table(
                headers,
                rows,
                title=f"Table {label}: trace replay ({assignment})",
            )
        )
    elif args.command == "scalability":
        headers, rows = experiments.scalability()
        print(
            format_table(
                headers, rows, title="Section V-F: scalability extrapolation"
            )
        )
    elif args.command == "hierarchy":
        headers, rows = experiments.hierarchy(
            args.workload, scale=args.scale
        )
        print(
            format_table(
                headers,
                rows,
                title=f"Section VIII: hierarchy extension ({args.workload})",
            )
        )
    elif args.command == "alternatives":
        headers, rows = experiments.alternatives(
            args.workload, scale=args.scale
        )
        print(
            format_table(
                headers,
                rows,
                title=f"Related-work comparison ({args.workload})",
            )
        )
    elif args.command == "metrics":
        overrides = {}
        if args.summary_repr is not None:
            overrides["summary"] = experiments.summary_config_for_repr(
                args.summary_repr
            )
        if args.update_policy is not None:
            overrides["update_policy"] = parse_update_policy(
                args.update_policy
            )
        registry = experiments.metrics_snapshot(
            args.workload,
            scale=args.scale,
            threshold=args.threshold,
            **overrides,
        )
        if args.format == "json":
            print(render_json(registry, workload=args.workload))
        else:
            print(render_prometheus(registry), end="")
    elif args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:
            return 0
    elif args.command == "obs":
        handler = {
            "cluster": _obs_cluster,
            "trace": _obs_trace,
            "overhead": _obs_overhead,
        }[args.obs_command]
        try:
            return asyncio.run(handler(args))
        except KeyboardInterrupt:
            return 0
    elif args.command == "loadgen":
        if args.uvloop:
            from repro.proxy.eventloop import install_uvloop

            if not install_uvloop():
                print("uvloop not available; using the default event loop")
        try:
            return asyncio.run(_loadgen(args))
        except KeyboardInterrupt:
            return 0
    elif args.command == "placement-bench":
        try:
            return asyncio.run(_placement_bench(args))
        except KeyboardInterrupt:
            return 0
    elif args.command == "lint":
        return run_lint_command(args)
    elif args.command == "sanitize-run":
        try:
            return asyncio.run(_sanitize_run(args))
        except KeyboardInterrupt:
            return 0
    elif args.command == "gen-trace":
        trace, groups = make_workload(args.workload, scale=args.scale)
        write_jsonl(trace, args.out)
        print(
            f"wrote {len(trace)} requests ({groups} proxy groups) to {args.out}"
        )
    elif args.command == "trace":
        return _trace_command(args)
    elif args.command == "dissemination":
        return _dissemination(args)
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
