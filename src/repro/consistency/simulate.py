"""Trace-driven evaluation of consistency policies.

Runs one cache over a trace under a policy and reports the trade-off
between validation traffic and served staleness -- the cost surface the
paper's perfect-consistency assumption sits at the origin of.

Semantics per request:

- **miss**: fetch from origin (one full fetch), store the copy with its
  version and the document's modification time.
- **hit, trusted**: serve the copy as-is; if its version is out of
  date, a *stale document was served to the user*.
- **hit, not trusted**: send a validation (If-Modified-Since); if the
  copy is still current, serve it (a validated hit, one message); if it
  changed, refetch (one message plus one full fetch).

The oracle policy short-circuits: version mismatches are detected with
no message, exactly the paper's simulation rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cache import WebCache
from repro.consistency.policies import (
    ConsistencyPolicy,
    CopyMeta,
    OracleConsistency,
)
from repro.traces.model import Trace


@dataclass
class ConsistencyResult:
    """Outcome of one consistency simulation."""

    policy: str
    trace_name: str
    requests: int = 0
    hits_served: int = 0
    stale_served: int = 0
    validations: int = 0
    validated_hits: int = 0
    origin_fetches: int = 0

    @property
    def hit_ratio(self) -> float:
        """Requests served from cache (fresh or stale, incl. validated)."""
        return self.hits_served / self.requests if self.requests else 0.0

    @property
    def stale_serve_ratio(self) -> float:
        """Requests answered with an outdated copy."""
        return self.stale_served / self.requests if self.requests else 0.0

    @property
    def validations_per_request(self) -> float:
        """Validation messages per request (the consistency traffic)."""
        return self.validations / self.requests if self.requests else 0.0


def _modification_times(trace: Trace) -> Dict[str, List[Tuple[float, int]]]:
    """Per-URL version-change history: ``[(time, version), ...]``.

    The synthetic generator bumps a document's version at some request;
    the change time is approximated by that request's timestamp (the
    first time the new version is observable).
    """
    history: Dict[str, List[Tuple[float, int]]] = {}
    for req in trace:
        changes = history.setdefault(req.url, [])
        if not changes or changes[-1][1] != req.version:
            changes.append((req.timestamp, req.version))
    return history


def simulate_consistency(
    trace: Trace,
    capacity: int,
    policy: ConsistencyPolicy,
) -> ConsistencyResult:
    """Run *trace* through one cache of *capacity* bytes under *policy*."""
    meta: Dict[str, CopyMeta] = {}
    cache = WebCache(
        capacity, on_evict=lambda url: meta.pop(url, None)
    )
    history = _modification_times(trace)
    result = ConsistencyResult(
        policy=policy.label(), trace_name=trace.name
    )
    oracle = isinstance(policy, OracleConsistency)

    def modified_at(url: str, version: int) -> float:
        for time, v in history.get(url, ()):
            if v == version:
                return time
        return 0.0

    for req in trace:
        result.requests += 1
        now = req.timestamp
        entry = cache.peek(req.url)
        if entry is None:
            result.origin_fetches += 1
            cache.put(req.url, req.size, version=req.version)
            if req.url in cache:
                meta[req.url] = CopyMeta(
                    version=req.version,
                    fetched_at=now,
                    modified_at=modified_at(req.url, req.version),
                )
            continue

        copy = meta[req.url]
        is_current = copy.version == req.version

        if oracle:
            # The paper's rule: a changed document is simply a miss.
            if is_current:
                cache.touch(req.url)
                result.hits_served += 1
            else:
                result.origin_fetches += 1
                cache.put(req.url, req.size, version=req.version)
                copy.version = req.version
                copy.fetched_at = now
                copy.modified_at = modified_at(req.url, req.version)
            continue

        if policy.trust(copy, now):
            cache.touch(req.url)
            result.hits_served += 1
            if not is_current:
                result.stale_served += 1
            continue

        # Revalidate with the origin.
        result.validations += 1
        if is_current:
            result.validated_hits += 1
            result.hits_served += 1
            cache.touch(req.url)
            copy.fetched_at = now  # freshness clock restarts on a 304
        else:
            result.origin_fetches += 1
            cache.put(req.url, req.size, version=req.version)
            copy.version = req.version
            copy.fetched_at = now
            copy.modified_at = modified_at(req.url, req.version)

    return result
