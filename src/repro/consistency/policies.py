"""Consistency policies: when is a cached copy trusted without asking?

Each policy answers one question for a cached copy at lookup time:
``trust(meta, now)`` -- serve it as-is, or revalidate with the origin
first.  The simulator handles the rest (validation accounting, stale
detection, refetching).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class CopyMeta:
    """What the cache knows about one stored copy."""

    version: int
    fetched_at: float
    #: Origin-side last-modification time as known at fetch.
    modified_at: float


class ConsistencyPolicy(ABC):
    """Decides whether a cached copy may be served without validation."""

    #: Label used in result tables.
    name = "abstract"

    @abstractmethod
    def trust(self, meta: CopyMeta, now: float) -> bool:
        """True to serve the copy blindly, False to revalidate first."""

    def label(self) -> str:
        """Human-readable identifier."""
        return self.name


class OracleConsistency(ConsistencyPolicy):
    """The paper's perfect-consistency assumption.

    The cache magically knows whether the document changed ("if a
    request hits on a document whose last-modified time or size is
    changed, we count it as a cache miss") -- no validation messages,
    no stale documents served.  The simulator special-cases this
    policy: ``trust`` is never consulted blindly.
    """

    name = "oracle"

    def trust(self, meta: CopyMeta, now: float) -> bool:
        return True  # the simulator intercepts version mismatches


class NeverValidate(ConsistencyPolicy):
    """Serve any cached copy forever; staleness is maximal."""

    name = "never-validate"

    def trust(self, meta: CopyMeta, now: float) -> bool:
        return True


class PollEveryTime(ConsistencyPolicy):
    """Revalidate on every hit; staleness is zero, traffic maximal."""

    name = "poll-every-time"

    def trust(self, meta: CopyMeta, now: float) -> bool:
        return False


class FixedTTL(ConsistencyPolicy):
    """Trust a copy for a fixed number of seconds after fetch."""

    name = "fixed-ttl"

    def __init__(self, ttl: float) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be > 0, got {ttl}")
        self.ttl = ttl

    def trust(self, meta: CopyMeta, now: float) -> bool:
        return now - meta.fetched_at <= self.ttl

    def label(self) -> str:
        return f"ttl={self.ttl:g}s"


class AdaptiveTTL(ConsistencyPolicy):
    """The Alex-protocol heuristic: lifetime proportional to age.

    A document that had not changed for a long time when fetched is
    trusted longer: ``ttl = factor * (fetched_at - modified_at)``,
    clamped to ``[min_ttl, max_ttl]``.
    """

    name = "adaptive-ttl"

    def __init__(
        self,
        factor: float = 0.2,
        min_ttl: float = 30.0,
        max_ttl: float = 86_400.0,
    ) -> None:
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        if not 0 < min_ttl <= max_ttl:
            raise ConfigurationError(
                f"need 0 < min_ttl <= max_ttl, got "
                f"({min_ttl}, {max_ttl})"
            )
        self.factor = factor
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl

    def trust(self, meta: CopyMeta, now: float) -> bool:
        age_at_fetch = max(0.0, meta.fetched_at - meta.modified_at)
        ttl = min(
            self.max_ttl, max(self.min_ttl, self.factor * age_at_fetch)
        )
        return now - meta.fetched_at <= ttl

    def label(self) -> str:
        return f"adaptive-ttl(k={self.factor:g})"
