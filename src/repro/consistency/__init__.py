"""Cache-consistency substrate.

The paper sidesteps consistency: "we assume that cache consistency
mechanism is perfect.  In practice, there are a variety of protocols
for Web cache consistency" (Section II, citing TTL- and
invalidation-based schemes).  This subpackage implements those
protocols so the perfect-consistency assumption can be quantified:

- :class:`~repro.consistency.policies.OracleConsistency` -- the paper's
  model: a version change is detected for free (0 validations, 0 stale
  documents served);
- :class:`~repro.consistency.policies.NeverValidate` -- serve whatever
  is cached (maximum staleness, zero validation traffic);
- :class:`~repro.consistency.policies.PollEveryTime` -- revalidate on
  every hit (zero staleness, maximum validation traffic);
- :class:`~repro.consistency.policies.FixedTTL` -- a copy is trusted
  for a fixed lifetime;
- :class:`~repro.consistency.policies.AdaptiveTTL` -- the Alex-protocol
  heuristic: trust a copy for a fraction of its age at fetch time.

:func:`~repro.consistency.simulate.simulate_consistency` runs a trace
through one cache under a policy and reports the trade-off the
protocols navigate: validation messages per request vs stale documents
served.
"""

from repro.consistency.policies import (
    AdaptiveTTL,
    ConsistencyPolicy,
    FixedTTL,
    NeverValidate,
    OracleConsistency,
    PollEveryTime,
)
from repro.consistency.simulate import ConsistencyResult, simulate_consistency

__all__ = [
    "AdaptiveTTL",
    "ConsistencyPolicy",
    "ConsistencyResult",
    "FixedTTL",
    "NeverValidate",
    "OracleConsistency",
    "PollEveryTime",
    "simulate_consistency",
]
