"""Analytic studies: the Section V-F scalability extrapolation and
table-formatting helpers shared by the benchmark harness."""

from repro.analysis.scalability import ScalabilityEstimate, extrapolate
from repro.analysis.tables import format_table

__all__ = ["ScalabilityEstimate", "extrapolate", "format_table"]
