"""The Section V-F scalability extrapolation.

The paper's back-of-the-envelope for 100 proxies with 8 GB caches:

    "Each proxy stores on average about 1M Web pages.  The Bloom filter
    memory needed to represent 1M pages is 2 MB at load factor 16.
    Each proxy needs about 200 MB to represent all the summaries plus
    another 8 MB to represent its own counters. ... The threshold of 1%
    corresponds to 10 K requests between updates, each update consisting
    of 99 messages, and the number of update messages per request is
    less than 0.01.  The false hit ratios are around 4.7% for the load
    factor of 16 with 10 hash functions. ... the overhead introduced by
    the protocol is under 0.06 messages per request for 100 proxies."

:func:`extrapolate` computes each of those quantities from first
principles so the numbers can be regenerated for any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bfmath import false_positive_probability
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScalabilityEstimate:
    """The derived quantities of the Section V-F calculation."""

    num_proxies: int
    pages_per_proxy: int
    filter_bytes_per_proxy: int
    summary_memory_bytes: int
    counter_memory_bytes: int
    requests_between_updates: float
    update_messages_per_request: float
    false_positive_per_filter: float
    false_hit_queries_per_request: float
    protocol_messages_per_request: float

    def summary(self) -> str:
        """A one-paragraph rendering mirroring the paper's prose."""
        return (
            f"{self.num_proxies} proxies, ~{self.pages_per_proxy / 1e6:.1f}M "
            f"pages each: filter = "
            f"{self.filter_bytes_per_proxy / 2**20:.1f} MB/proxy, summaries = "
            f"{self.summary_memory_bytes / 2**20:.0f} MB/proxy plus "
            f"{self.counter_memory_bytes / 2**20:.0f} MB of counters; "
            f"~{self.requests_between_updates:.0f} requests between updates "
            f"(={self.update_messages_per_request:.4f} update msgs/request); "
            f"per-filter false positive {self.false_positive_per_filter:.2%} "
            f"-> {self.false_hit_queries_per_request:.4f} false-hit "
            f"queries/request; protocol overhead "
            f"{self.protocol_messages_per_request:.4f} msgs/request."
        )


def extrapolate(
    num_proxies: int = 100,
    cache_bytes: int = 8 * 2**30,
    page_size: int = 8 * 1024,
    load_factor: int = 16,
    num_hashes: int = 10,
    update_threshold: float = 0.01,
    counter_bits: int = 4,
    miss_ratio: float = 1.0,
) -> ScalabilityEstimate:
    """Compute the Section V-F estimate for an arbitrary configuration.

    ``miss_ratio`` converts between requests and cache insertions; the
    paper's calculation implicitly treats every request as potentially
    inserting a document (miss_ratio = 1 gives its "10 K requests
    between updates" for 1M pages at 1%).
    """
    if num_proxies < 2:
        raise ConfigurationError("num_proxies must be >= 2")
    if not 0.0 < update_threshold <= 1.0:
        raise ConfigurationError("update_threshold must be in (0, 1]")
    if not 0.0 < miss_ratio <= 1.0:
        raise ConfigurationError("miss_ratio must be in (0, 1]")

    pages = cache_bytes // page_size
    filter_bits = pages * load_factor
    filter_bytes = filter_bits // 8
    peers = num_proxies - 1

    summary_memory = filter_bytes * peers
    counter_memory = (filter_bits * counter_bits) // 8

    new_docs_per_update = pages * update_threshold
    requests_between_updates = new_docs_per_update / miss_ratio
    update_messages_per_request = peers / requests_between_updates

    p_fp = false_positive_probability(load_factor, num_hashes)
    # A false hit sends a query; with `peers` independent filters the
    # expected number of spurious candidates per (missing) URL is the
    # sum of the per-filter probabilities.
    false_hit_queries = peers * p_fp * miss_ratio

    return ScalabilityEstimate(
        num_proxies=num_proxies,
        pages_per_proxy=pages,
        filter_bytes_per_proxy=filter_bytes,
        summary_memory_bytes=summary_memory,
        counter_memory_bytes=counter_memory,
        requests_between_updates=requests_between_updates,
        update_messages_per_request=update_messages_per_request,
        false_positive_per_filter=p_fp,
        false_hit_queries_per_request=false_hit_queries,
        protocol_messages_per_request=(
            update_messages_per_request + false_hit_queries
        ),
    )
