"""Plain-text table rendering for the benchmark harness.

The benchmarks print paper-style rows; keeping the renderer here (rather
than in each benchmark) makes the output format uniform across all
tables and figures.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render *rows* as an aligned monospace table.

    Cells are stringified with ``str``; floats should be pre-formatted
    by the caller so each table controls its own precision.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * w for w in widths]))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)
