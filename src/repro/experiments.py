"""Experiment runners regenerating every table and figure in the paper.

Each function returns ``(headers, rows)`` ready for
:func:`repro.analysis.tables.format_table`; the CLI prints them and the
benchmark harness asserts on their shape.  The mapping to the paper:

==================  ====================================================
Function            Paper artefact
==================  ====================================================
:func:`table1`      Table I   -- trace statistics
:func:`fig1`        Fig. 1    -- hit ratio vs cache size, 4 schemes
:func:`table2`      Table II  -- ICP/SC-ICP overhead, 4-proxy benchmark
:func:`fig2`        Fig. 2    -- update-delay threshold sweep
:func:`table3`      Table III -- summary memory as % of cache
:func:`fig4`        Fig. 4    -- false-positive probability curves
:func:`representations`  Figs. 5-8 -- per-representation hit ratios,
                    false hits, messages, and bytes (plus Table III
                    memory), all from one simulation sweep
:func:`table45`     Tables IV/V -- trace replay, both assignments
:func:`scalability` Section V-F -- 100-proxy extrapolation
:func:`hierarchy`   Section VIII -- parent/child extension
:func:`alternatives`  related work -- ICP vs CARP vs directory server
==================  ====================================================

Simulated workloads are the synthetic stand-ins of
:mod:`repro.traces.workloads`; ``scale`` grows them toward the paper's
trace sizes (larger scale -> closer to the paper's message-ratio regime,
longer runtime).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.scalability import extrapolate
from repro.core.bfmath import example_table, fig4_series
from repro.core.summary import SummaryConfig
from repro.proxy.config import ProxyMode
from repro.sharing.carp import simulate_carp
from repro.sharing.directory_server import simulate_directory_server
from repro.sharing.hierarchy import simulate_hierarchy
from repro.sharing.results import SharingResult
from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_no_sharing,
    simulate_simple_sharing,
    simulate_single_copy_sharing,
)
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)
from repro.simulation.experiment import (
    ExperimentResult,
    run_overhead_experiment,
    run_replay_experiment,
)
from repro.simulation.parallel import ExperimentCell, run_cells
from repro.summaries import UpdatePolicy
from repro.traces.model import Trace
from repro.traces.stats import compute_stats, mean_cacheable_size
from repro.traces.workloads import WORKLOAD_PRESETS, make_workload

ALL_WORKLOADS: Tuple[str, ...] = tuple(WORKLOAD_PRESETS)

#: CLI shorthand -> ``SummaryConfig.kind`` for ``--summary-repr`` flags.
SUMMARY_REPR_KINDS: Dict[str, str] = {
    "bloom": "bloom",
    "exact": "exact-directory",
    "server-name": "server-name",
}


def summary_config_for_repr(
    name: str, load_factor: int = 8
) -> SummaryConfig:
    """The :class:`SummaryConfig` for a ``--summary-repr`` CLI value."""
    return SummaryConfig(
        kind=SUMMARY_REPR_KINDS[name], load_factor=load_factor
    )

#: Cache size as a fraction of the infinite cache size used by the
#: paper's headline simulations ("assume a cache size that is 10% of the
#: infinite cache size").
DEFAULT_CACHE_FRACTION = 0.10

Headers = Sequence[str]
Rows = List[Sequence[object]]


def _workload_setup(name: str, scale: float, cache_fraction: float):
    """Generate a workload and derive per-proxy capacity and doc size."""
    trace, groups = make_workload(name, scale=scale)
    stats = compute_stats(trace)
    capacity = max(
        1, int(stats.infinite_cache_bytes * cache_fraction / groups)
    )
    doc_size = mean_cacheable_size(trace)
    return trace, groups, capacity, doc_size, stats


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

def table1(
    workloads: Sequence[str] = ALL_WORKLOADS, scale: float = 1.0
) -> Tuple[Headers, Rows]:
    """Trace statistics (Table I)."""
    headers = (
        "trace",
        "duration",
        "requests",
        "clients",
        "groups",
        "infinite-cache",
        "max-HR",
        "max-BHR",
    )
    rows: Rows = []
    for name in workloads:
        trace, groups = make_workload(name, scale=scale)
        s = compute_stats(trace)
        rows.append(
            (
                name,
                f"{s.duration_seconds / 60:.0f} min",
                s.num_requests,
                s.num_clients,
                groups,
                f"{s.infinite_cache_bytes / 2**20:.1f} MB",
                f"{s.max_hit_ratio:.3f}",
                f"{s.max_byte_hit_ratio:.3f}",
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 1
# ----------------------------------------------------------------------

def fig1(
    workload: str,
    scale: float = 1.0,
    cache_fractions: Sequence[float] = (0.005, 0.05, 0.10, 0.20),
) -> Tuple[Headers, Rows]:
    """Hit ratios of the four sharing schemes vs cache size (Fig. 1).

    Includes the paper's fifth series, a global cache 10% smaller.
    """
    trace, groups = make_workload(workload, scale=scale)
    stats = compute_stats(trace)
    headers = (
        "cache%",
        "no-sharing",
        "simple",
        "single-copy",
        "global",
        "global-0.9x",
    )
    rows: Rows = []
    for fraction in cache_fractions:
        capacity = max(
            1, int(stats.infinite_cache_bytes * fraction / groups)
        )
        results = [
            simulate_no_sharing(trace, groups, capacity),
            simulate_simple_sharing(trace, groups, capacity),
            simulate_single_copy_sharing(trace, groups, capacity),
            simulate_global_cache(trace, groups, capacity),
            simulate_global_cache(trace, groups, capacity, capacity_scale=0.9),
        ]
        rows.append(
            (f"{fraction * 100:g}%",)
            + tuple(f"{r.total_hit_ratio:.3f}" for r in results)
        )
    return headers, rows


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

def table2(
    target_hit_ratio: float = 0.25,
    clients_per_proxy: int = 30,
    requests_per_client: int = 200,
    num_proxies: int = 4,
) -> Tuple[Headers, Rows]:
    """ICP overhead benchmark (Table II) at one inherent hit ratio.

    Rows: no-ICP, ICP, SC-ICP, then percentage-overhead rows vs no-ICP.
    """
    results: Dict[ProxyMode, ExperimentResult] = {}
    for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP):
        results[mode] = run_overhead_experiment(
            mode,
            num_proxies=num_proxies,
            clients_per_proxy=clients_per_proxy,
            requests_per_client=requests_per_client,
            target_hit_ratio=target_hit_ratio,
        )
    headers = (
        "config",
        "hit-ratio",
        "latency(s)",
        "user-cpu(s)",
        "sys-cpu(s)",
        "udp-msgs",
        "total-pkts",
    )
    rows: Rows = []
    base = results[ProxyMode.NO_ICP]
    for mode, r in results.items():
        rows.append(
            (
                r.mode,
                f"{r.hit_ratio:.3f}",
                f"{r.mean_latency:.3f}",
                f"{r.user_cpu:.1f}",
                f"{r.system_cpu:.1f}",
                r.udp_sent + r.udp_received,
                r.total_packets,
            )
        )
    for mode in (ProxyMode.ICP, ProxyMode.SC_ICP):
        ov = results[mode].overhead_vs(base)
        rows.append(
            (
                f"{mode.value} overhead",
                "-",
                f"+{ov['latency']:.1f}%",
                f"+{ov['user_cpu']:.1f}%",
                f"+{ov['system_cpu']:.1f}%",
                f"{(results[mode].udp_sent + results[mode].udp_received) / max(1, base.udp_sent + base.udp_received):.0f}x",
                f"+{ov['packets']:.1f}%",
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 2
# ----------------------------------------------------------------------

def fig2(
    workload: str,
    scale: float = 1.0,
    thresholds: Sequence[float] = (0.0, 0.001, 0.01, 0.02, 0.05, 0.10),
    cache_fraction: float = DEFAULT_CACHE_FRACTION,
) -> Tuple[Headers, Rows]:
    """Impact of summary update delays (Fig. 2).

    Uses exact-directory summaries, as the paper does for this figure
    ("assume that the summary is a copy of the cache directory").
    Threshold 0 is the figure's no-delay top line.
    """
    trace, groups, capacity, doc_size, _stats = _workload_setup(
        workload, scale, cache_fraction
    )
    headers = (
        "threshold",
        "total-HR",
        "false-miss",
        "false-hit",
        "stale-hit",
        "upd-msgs/req",
    )
    rows: Rows = []
    for threshold in thresholds:
        cfg = SummarySharingConfig(
            summary=SummaryConfig(kind="exact-directory"),
            update_policy=ThresholdUpdatePolicy(threshold),
            expected_doc_size=doc_size,
        )
        r = simulate_summary_sharing(trace, groups, capacity, cfg)
        rows.append(
            (
                f"{threshold * 100:g}%",
                f"{r.total_hit_ratio:.4f}",
                f"{r.false_miss_ratio:.4f}",
                f"{r.false_hit_ratio:.4f}",
                f"{r.remote_stale_hit_ratio:.4f}",
                f"{r.messages.update_messages / r.requests:.4f}",
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Figs. 5-8 and Table III: the representation sweep
# ----------------------------------------------------------------------

REPRESENTATIONS: Tuple[SummaryConfig, ...] = (
    SummaryConfig(kind="exact-directory"),
    SummaryConfig(kind="server-name"),
    SummaryConfig(kind="bloom", load_factor=8),
    SummaryConfig(kind="bloom", load_factor=16),
    SummaryConfig(kind="bloom", load_factor=32),
)


def _representation_cells(
    workload: str,
    sweep: Sequence[SummaryConfig],
    scale: float,
    threshold: float,
    cache_fraction: float,
    include_icp: bool,
) -> List[Tuple[str, ExperimentCell]]:
    """(label, cell) pairs mirroring one :func:`representations` sweep."""
    pairs = [
        (
            c.label(),
            ExperimentCell(
                workload=workload,
                kind=c.kind,
                load_factor=c.load_factor,
                threshold=threshold,
                scale=scale,
                cache_fraction=cache_fraction,
            ),
        )
        for c in sweep
    ]
    if include_icp:
        pairs.append(
            (
                "icp",
                ExperimentCell(
                    workload=workload,
                    kind="icp",
                    scale=scale,
                    cache_fraction=cache_fraction,
                ),
            )
        )
    return pairs


def representations(
    workload: str,
    scale: float = 1.0,
    threshold: float = 0.01,
    cache_fraction: float = DEFAULT_CACHE_FRACTION,
    include_icp: bool = True,
    representation: Optional[str] = None,
    update_policy: Optional[UpdatePolicy] = None,
    jobs: int = 1,
) -> Dict[str, SharingResult]:
    """Run the Section V-D comparison over one workload.

    Returns results keyed by representation label (plus ``"icp"``),
    carrying everything Figs. 5-8 and Table III report.
    ``representation`` narrows the sweep to one ``SummaryConfig.kind``;
    ``update_policy`` replaces the default threshold policy.  ``jobs``
    above 1 fans the per-representation cells across worker processes
    (:mod:`repro.simulation.parallel`); results are bit-exact with the
    serial run.  A custom ``update_policy`` cannot be described by an
    :class:`~repro.simulation.parallel.ExperimentCell`, so it forces the
    serial path.
    """
    sweep: Sequence[SummaryConfig] = REPRESENTATIONS
    if representation is not None:
        sweep = tuple(
            c for c in REPRESENTATIONS if c.kind == representation
        )
    if jobs > 1 and update_policy is None:
        pairs = _representation_cells(
            workload, sweep, scale, threshold, cache_fraction, include_icp
        )
        outcomes = run_cells([cell for _, cell in pairs], jobs=jobs)
        return {
            label: outcome
            for (label, _), outcome in zip(pairs, outcomes)
        }
    trace, groups, capacity, doc_size, _stats = _workload_setup(
        workload, scale, cache_fraction
    )
    policy = update_policy or ThresholdUpdatePolicy(threshold)
    results: Dict[str, SharingResult] = {}
    for summary_config in sweep:
        cfg = SummarySharingConfig(
            summary=summary_config,
            update_policy=policy,
            expected_doc_size=doc_size,
        )
        results[summary_config.label()] = simulate_summary_sharing(
            trace, groups, capacity, cfg
        )
    if include_icp:
        results["icp"] = simulate_icp(trace, groups, capacity)
    return results


def representation_rows(
    results: Dict[str, SharingResult],
) -> Tuple[Headers, Rows]:
    """Render a representation sweep as combined Fig. 5-8/Table III rows."""
    headers = (
        "summary",
        "total-HR",
        "false-hit",
        "msgs/req",
        "bytes/req",
        "memory%",
    )
    rows: Rows = []
    for label, r in results.items():
        rows.append(
            (
                label,
                f"{r.total_hit_ratio:.3f}",
                f"{r.false_hit_ratio:.4f}",
                f"{r.messages_per_request:.3f}",
                f"{r.message_bytes_per_request:.0f}",
                f"{r.summary_memory_ratio * 100:.2f}"
                if label != "icp"
                else "-",
            )
        )
    return headers, rows


def table3(
    workloads: Sequence[str] = ALL_WORKLOADS,
    scale: float = 1.0,
    threshold: float = 0.01,
    jobs: int = 1,
) -> Tuple[Headers, Rows]:
    """Summary memory as % of proxy cache size (Table III).

    ``jobs`` above 1 fans the whole workloads-x-representations grid
    across worker processes in one batch (rather than parallelising
    within each workload), so the pool stays saturated.
    """
    headers = ("trace",) + tuple(c.label() for c in REPRESENTATIONS)
    per_workload: Dict[str, Dict[str, SharingResult]] = {}
    if jobs > 1:
        pairs = [
            (name, label, cell)
            for name in workloads
            for label, cell in _representation_cells(
                name, REPRESENTATIONS, scale, threshold,
                DEFAULT_CACHE_FRACTION, False,
            )
        ]
        outcomes = run_cells([cell for _, _, cell in pairs], jobs=jobs)
        for (name, label, _), outcome in zip(pairs, outcomes):
            per_workload.setdefault(name, {})[label] = outcome
    else:
        for name in workloads:
            per_workload[name] = representations(
                name, scale=scale, threshold=threshold, include_icp=False
            )
    rows: Rows = []
    for name in workloads:
        results = per_workload[name]
        rows.append(
            (name,)
            + tuple(
                f"{results[c.label()].summary_memory_ratio * 100:.2f}%"
                for c in REPRESENTATIONS
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Fig. 4
# ----------------------------------------------------------------------

def fig4() -> Tuple[Headers, Rows]:
    """False-positive probability vs bits per entry (Fig. 4)."""
    xs, with_four, with_optimal = fig4_series()
    headers = ("bits/entry", "p(k=4)", "k-opt", "p(k-opt)")
    rows: Rows = []
    example = {lf: row for row in example_table() for lf in [row[0]]}
    for x, p4, popt in zip(xs, with_four, with_optimal):
        k_opt = example[x][3] if x in example else "-"
        rows.append((x, f"{p4:.2e}", k_opt, f"{popt:.2e}"))
    return headers, rows


# ----------------------------------------------------------------------
# Tables IV and V
# ----------------------------------------------------------------------

def table45(
    assignment: str = "client-bound",
    workload: str = "upisa",
    scale: float = 1.0,
    num_requests: Optional[int] = 24_000,
    num_proxies: int = 4,
    clients_per_proxy: int = 20,
) -> Tuple[Headers, Rows]:
    """Trace replay through the simulated cluster (Tables IV/V).

    ``assignment`` selects experiment 3 (``client-bound``) or
    experiment 4 (``round-robin``).
    """
    trace, _groups = make_workload(workload, scale=scale)
    if num_requests is not None:
        trace = trace.head(num_requests)
    results: Dict[ProxyMode, ExperimentResult] = {}
    for mode in (ProxyMode.NO_ICP, ProxyMode.ICP, ProxyMode.SC_ICP):
        results[mode] = run_replay_experiment(
            trace,
            mode,
            num_proxies=num_proxies,
            clients_per_proxy=clients_per_proxy,
            assignment=assignment,
        )
    headers = (
        "config",
        "hit-ratio",
        "remote-HR",
        "latency(s)",
        "user-cpu(s)",
        "sys-cpu(s)",
        "udp-msgs",
        "total-pkts",
    )
    rows: Rows = []
    for r in results.values():
        rows.append(
            (
                r.mode,
                f"{r.hit_ratio:.3f}",
                f"{r.remote_hit_ratio:.3f}",
                f"{r.mean_latency:.3f}",
                f"{r.user_cpu:.1f}",
                f"{r.system_cpu:.1f}",
                r.udp_sent + r.udp_received,
                r.total_packets,
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Section V-F
# ----------------------------------------------------------------------

def scalability(
    proxy_counts: Sequence[int] = (16, 32, 64, 100, 200),
) -> Tuple[Headers, Rows]:
    """The 100-proxy extrapolation, swept over cluster sizes."""
    headers = (
        "proxies",
        "summary-MB/proxy",
        "counter-MB",
        "upd-msgs/req",
        "false-hit-q/req",
        "total-msgs/req",
    )
    rows: Rows = []
    for n in proxy_counts:
        est = extrapolate(num_proxies=n)
        rows.append(
            (
                n,
                f"{est.summary_memory_bytes / 2**20:.0f}",
                f"{est.counter_memory_bytes / 2**20:.0f}",
                f"{est.update_messages_per_request:.4f}",
                f"{est.false_hit_queries_per_request:.4f}",
                f"{est.protocol_messages_per_request:.4f}",
            )
        )
    return headers, rows


# ----------------------------------------------------------------------
# Extensions: hierarchy (Section VIII) and related-work comparisons
# ----------------------------------------------------------------------

def hierarchy(
    workload: str = "questnet",
    scale: float = 1.0,
    child_cache_fraction: float = 0.05,
    parent_cache_fraction: float = 0.20,
) -> Tuple[Headers, Rows]:
    """Parent/child hierarchy with and without SC-ICP sibling sharing."""
    trace, groups = make_workload(workload, scale=scale)
    stats = compute_stats(trace)
    child_capacity = max(
        1, int(stats.infinite_cache_bytes * child_cache_fraction / groups)
    )
    parent_capacity = max(
        1, int(stats.infinite_cache_bytes * parent_cache_fraction)
    )
    headers = (
        "configuration",
        "child-HR",
        "sibling-HR",
        "parent-load",
        "total-HR",
        "origin-traffic",
    )
    rows: Rows = []
    for label, sibling in (
        ("hierarchy only", False),
        ("hierarchy + SC-ICP siblings", True),
    ):
        r = simulate_hierarchy(
            trace,
            num_children=groups,
            child_capacity=child_capacity,
            parent_capacity=parent_capacity,
            sibling_sharing=sibling,
        )
        rows.append(
            (
                label,
                f"{r.child_hit_ratio:.3f}",
                f"{r.sibling_hits / r.requests:.3f}",
                f"{r.parent_requests / r.requests:.3f}",
                f"{r.total_hit_ratio:.3f}",
                f"{r.origin_traffic_ratio:.3f}",
            )
        )
    return headers, rows


def alternatives(
    workload: str = "ucb",
    scale: float = 1.0,
    threshold: float = 0.01,
    cache_fraction: float = DEFAULT_CACHE_FRACTION,
) -> Tuple[Headers, Rows]:
    """Summary cache vs ICP, CARP, and the central directory server."""
    trace, groups, capacity, doc_size, _stats = _workload_setup(
        workload, scale, cache_fraction
    )
    icp = simulate_icp(trace, groups, capacity)
    carp = simulate_carp(trace, groups, capacity)
    dserver, load = simulate_directory_server(trace, groups, capacity)
    bloom = simulate_summary_sharing(
        trace,
        groups,
        capacity,
        SummarySharingConfig(
            summary=SummaryConfig(kind="bloom", load_factor=16),
            update_policy=ThresholdUpdatePolicy(threshold),
            expected_doc_size=doc_size,
        ),
    )
    headers = (
        "protocol",
        "hit-ratio",
        "interproxy-msgs/req",
        "wide-area-routed",
        "central-msgs/req",
    )
    rows: Rows = [
        (
            "icp",
            f"{icp.total_hit_ratio:.3f}",
            f"{icp.messages_per_request:.3f}",
            "0%",
            "-",
        ),
        (
            "carp",
            f"{carp.hit_ratio:.3f}",
            "0.000",
            f"{carp.remote_routing_ratio:.0%}",
            "-",
        ),
        (
            "directory-server",
            f"{dserver.total_hit_ratio:.3f}",
            f"{dserver.messages_per_request:.3f}",
            "0%",
            f"{load.per_request(dserver.requests):.2f}",
        ),
        (
            "summary-cache (bloom-16)",
            f"{bloom.total_hit_ratio:.3f}",
            f"{bloom.messages_per_request:.3f}",
            "0%",
            "-",
        ),
    ]
    return headers, rows


def metrics_snapshot(
    workload: str = "upisa",
    scale: float = 1.0,
    threshold: float = 0.01,
    cache_fraction: float = DEFAULT_CACHE_FRACTION,
    summary: Optional[SummaryConfig] = None,
    update_policy: Optional[UpdatePolicy] = None,
):
    """Run one sharing simulation + ICP under a fresh registry.

    Backs ``summary-cache metrics``: installs a live
    :class:`~repro.obs.registry.MetricsRegistry` as the process default,
    replays one workload through ``simulate_summary_sharing`` (bloom
    load factor 8, or whatever *summary*/*update_policy* select) and
    ``simulate_icp``, and returns the populated registry.  The previous
    default registry is always restored, so calling this never leaves
    instrumentation enabled behind the caller's back.
    """
    from repro.obs.registry import MetricsRegistry, set_registry

    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        trace, groups, capacity, doc_size, _stats = _workload_setup(
            workload, scale, cache_fraction
        )
        cfg = SummarySharingConfig(
            summary=summary or SummaryConfig(kind="bloom", load_factor=8),
            update_policy=update_policy or ThresholdUpdatePolicy(threshold),
            expected_doc_size=doc_size,
        )
        simulate_summary_sharing(trace, groups, capacity, cfg)
        simulate_icp(trace, groups, capacity)
    finally:
        set_registry(previous)
    return registry
