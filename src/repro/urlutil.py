"""Small URL helpers shared by summaries, traces, and the proxy prototype.

The paper's server-name summary representation keeps only "the server
name component of the URL's in cache", observing roughly a 10:1 ratio of
distinct URLs to distinct server names.  :func:`server_of` extracts that
component.
"""

from __future__ import annotations


def server_of(url: str) -> str:
    """Return the server-name component of *url*.

    Handles ``scheme://host[:port]/path`` as well as bare ``host/path``
    forms seen in proxy logs.  The port, if present, is kept: two ports on
    one host are distinct servers to a proxy.
    """
    rest = url
    scheme_sep = rest.find("://")
    if scheme_sep != -1:
        rest = rest[scheme_sep + 3 :]
    slash = rest.find("/")
    if slash != -1:
        rest = rest[:slash]
    return rest.lower()


def make_url(server_id: int, doc_id: int, domain: str = "example.com") -> str:
    """Build a synthetic URL for document *doc_id* hosted on *server_id*."""
    return f"http://server{server_id}.{domain}/doc/{doc_id}"
