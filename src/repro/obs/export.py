"""Render a :class:`~repro.obs.registry.MetricsRegistry` for consumers.

Two formats:

- :func:`render_prometheus` -- the Prometheus text exposition format
  (version 0.0.4), what ``GET /metrics`` serves: ``# HELP`` / ``# TYPE``
  preambles, one sample line per label set, histograms expanded into
  cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
- :func:`render_json` -- a JSON document carrying the same snapshot
  (``GET /metrics?format=json`` and the ``summary-cache metrics``
  subcommand).
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

#: Content type of the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(
    labels: Dict[str, str], extra: Optional[Dict[str, str]] = None
) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # The exposition format spells non-finite values '+Inf'/'-Inf'/'NaN';
    # Python's repr() forms ('inf', '-inf', 'nan') are not valid samples.
    if math.isnan(value):
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format."""
    lines: List[str] = []
    seen_preamble = set()
    for metric in registry.collect():
        if metric.name not in seen_preamble:
            seen_preamble.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, count in metric.cumulative():
                labels = _format_labels(
                    metric.labels, {"le": _format_value(bound)}
                )
                lines.append(f"{metric.name}_bucket{labels} {count}")
            base = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}_sum{base} {_format_value(metric.sum)}"
            )
            lines.append(f"{metric.name}_count{base} {metric.count}")
        elif isinstance(metric, Gauge):
            labels = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.current())}"
            )
        elif isinstance(metric, Counter):
            labels = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.value)}"
            )
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry, **extra: object) -> str:
    """The registry snapshot as a JSON document.

    Keyword arguments are merged into the top-level object (the proxy
    adds its name/mode; the CLI adds the experiment parameters).
    """
    return json.dumps(
        {"metrics": registry.snapshot(), **extra},
        sort_keys=True,
        default=str,
    )


#: One sample line: ``name{labels} value [timestamp]``.  The label body
#: is matched greedily up to the *last* closing brace before the value,
#: so label values containing spaces, escaped quotes, or ``}`` (all
#: legal once escaped per the exposition format) cannot mis-split the
#: line the way a naive ``rpartition(" ")`` does.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse exposition text back into ``{name: {labelstr: value}}``.

    A deliberately small inverse of :func:`render_prometheus`, used by
    the tests and the cluster aggregator's text-scrape path; it
    understands the subset this module emits plus optional trailing
    integer timestamps.  The label string is kept verbatim (escapes
    included) so round-tripping a rendered registry is exact.  A sample
    line that does not parse raises
    :class:`~repro.errors.ProtocolError`.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ProtocolError(f"malformed exposition sample {line!r}")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ProtocolError(
                f"malformed sample value in {line!r}"
            ) from exc
        labels = match.group("labels") or ""
        out.setdefault(match.group("name"), {})[labels] = value
    return out
