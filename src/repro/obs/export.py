"""Render a :class:`~repro.obs.registry.MetricsRegistry` for consumers.

Two formats:

- :func:`render_prometheus` -- the Prometheus text exposition format
  (version 0.0.4), what ``GET /metrics`` serves: ``# HELP`` / ``# TYPE``
  preambles, one sample line per label set, histograms expanded into
  cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
- :func:`render_json` -- a JSON document carrying the same snapshot
  (``GET /metrics?format=json`` and the ``summary-cache metrics``
  subcommand).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

#: Content type of the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str], extra: Dict[str, str] = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format."""
    lines: List[str] = []
    seen_preamble = set()
    for metric in registry.collect():
        if metric.name not in seen_preamble:
            seen_preamble.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, count in metric.cumulative():
                labels = _format_labels(
                    metric.labels, {"le": _format_value(bound)}
                )
                lines.append(f"{metric.name}_bucket{labels} {count}")
            base = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}_sum{base} {_format_value(metric.sum)}"
            )
            lines.append(f"{metric.name}_count{base} {metric.count}")
        elif isinstance(metric, Gauge):
            labels = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.current())}"
            )
        elif isinstance(metric, Counter):
            labels = _format_labels(metric.labels)
            lines.append(
                f"{metric.name}{labels} {_format_value(metric.value)}"
            )
    return "\n".join(lines) + "\n"


def render_json(registry: MetricsRegistry, **extra: object) -> str:
    """The registry snapshot as a JSON document.

    Keyword arguments are merged into the top-level object (the proxy
    adds its name/mode; the CLI adds the experiment parameters).
    """
    return json.dumps(
        {"metrics": registry.snapshot(), **extra},
        sort_keys=True,
        default=str,
    )


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse exposition text back into ``{name: {labelstr: value}}``.

    A deliberately small inverse of :func:`render_prometheus`, used by
    the tests (and handy for scraping a live proxy from scripts); it
    understands exactly the subset this module emits.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        name, _, labels = name_part.partition("{")
        labels = labels.rstrip("}") if labels else ""
        value = float(value_part)
        out.setdefault(name, {})[labels] = value
    return out
