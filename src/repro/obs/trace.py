"""A lightweight event-trace ring buffer for message lifecycles.

Where the registry answers "how many / how long", the trace ring
answers "what happened to *this* request": every ICP/SC-ICP message
lifecycle (query sent -> peer replies -> false-hit resolution;
DIRUPDATE drain -> apply) is recorded as a sequence of
:class:`TraceEvent` records sharing a per-request **trace id**.

The ring holds the last *capacity* events; older events are dropped
(and counted) rather than growing without bound -- a proxy serving
millions of users cannot keep a per-request journal.  Event kinds used
by the instrumented components (see ``docs/observability.md`` for the
full schema):

====================  ================================================
kind                  meaning
====================  ================================================
``http.request``      client request accepted (fields: ``url``)
``http.served``       response written (``source``, ``bytes``)
``icp.query.sent``    query multicast to candidate peers (``peers``)
``icp.reply``         one peer replied (``peer``, ``hit``)
``icp.timeout``       query round timed out (``waited``)
``icp.false_hit``     round ended with no peer holding the document
``icp.remote_hit``    document fetched from a peer (``peer``)
``icp.fetch_failed``  the HIT peer no longer had the document (``peer``)
``dirupdate.drain``   pending bit flips drained into messages
                      (``flips``, ``messages``, ``peers``)
``dirupdate.apply``   a peer's delta applied locally (``peer``,
                      ``changed``)
``digest.apply``      a whole-filter digest finished reassembly
                      (``peer``)
====================  ================================================
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ConfigurationError


class TraceEvent:
    """One timestamped step in a message lifecycle."""

    __slots__ = ("trace_id", "kind", "timestamp", "fields")

    def __init__(
        self,
        trace_id: int,
        kind: str,
        timestamp: float,
        fields: Dict[str, object],
    ) -> None:
        self.trace_id = trace_id
        self.kind = kind
        self.timestamp = timestamp
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "timestamp": self.timestamp,
            **self.fields,
        }

    def __repr__(self) -> str:
        extras = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return (
            f"TraceEvent(#{self.trace_id} {self.kind}"
            f"{' ' + extras if extras else ''})"
        )


class TraceRing:
    """A bounded, append-only buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Events discarded because the ring was full.
        self.dropped = 0
        self._ids = itertools.count(1)

    @property
    def capacity(self) -> int:
        """Maximum number of retained events."""
        return self._capacity

    def next_trace_id(self) -> int:
        """A fresh id correlating the events of one request lifecycle."""
        return next(self._ids)

    def record(
        self, trace_id: int, kind: str, **fields: object
    ) -> TraceEvent:
        """Append one event; oldest events fall off a full ring."""
        if len(self._events) == self._capacity:
            self.dropped += 1
        event = TraceEvent(trace_id, kind, time.time(), fields)
        self._events.append(event)
        return event

    def events(
        self,
        trace_id: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Retained events, oldest first, optionally filtered."""
        out = []
        for event in self._events:
            if trace_id is not None and event.trace_id != trace_id:
                continue
            if kind is not None and event.kind != kind:
                continue
            out.append(event)
        return out

    def trace(self, trace_id: int) -> List[TraceEvent]:
        """Every retained event of one lifecycle, oldest first."""
        return self.events(trace_id=trace_id)

    def clear(self) -> None:
        """Discard all events and reset the drop counter."""
        self._events.clear()
        self.dropped = 0

    def as_dicts(self) -> List[dict]:
        """JSON-ready list of all retained events."""
        return [event.as_dict() for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"TraceRing(events={len(self._events)}/{self._capacity}, "
            f"dropped={self.dropped})"
        )
