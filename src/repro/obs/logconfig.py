"""Structured logging setup shared by the CLI and the examples.

Every module in :mod:`repro.proxy` and :mod:`repro.simulation` logs
through a module-level ``logging.getLogger(__name__)``; this module owns
the one place that configures handlers, so library code never calls
``basicConfig`` and embedders keep full control of their logging tree.

The format is line-structured (``ts level logger message``) with
``key=value`` pairs in messages, grep- and machine-friendly without a
JSON dependency.
"""

from __future__ import annotations

import logging
from typing import Optional, TextIO
from typing import Optional

#: The root of the package's logger tree.
ROOT_LOGGER = "repro"

#: One line per record: timestamp, level, logger, message.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s %(message)s"


def configure_logging(
    verbosity: int = 0,
    stream: Optional[TextIO] = None,
    fmt: str = LOG_FORMAT,
) -> logging.Logger:
    """Configure the ``repro`` logger tree for CLI use.

    *verbosity* maps the CLI's ``-v`` count: 0 -> WARNING (quiet
    tables-only output), 1 -> INFO (lifecycle events), 2+ -> DEBUG
    (per-message protocol detail).  Returns the root package logger.

    Calling it again replaces the handler, so tests can reconfigure
    freely.
    """
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO
        if verbosity == 1
        else logging.DEBUG
    )
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the package tree (``repro`` when *name* is None)."""
    if name is None:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
