"""Request-scoped distributed tracing: spans and context propagation.

Where :mod:`repro.obs.trace` keeps a flat ring of per-process events,
this module models a request as a **trace**: a tree of :class:`Span`
records sharing one 32-bit trace id, with parent/child links, wall-time
extents, and typed attributes.  The point is the *cross-proxy* view the
paper's accounting needs (false hits, remote hits, and inter-proxy
message overhead are all relations between events on different
machines): a client request on proxy A, the SC-ICP query round it
triggers, the ``ICP_OP_QUERY`` handled on peer B, and the peer fetch
that follows all carry the same trace id, so the cluster aggregator
(:mod:`repro.obs.cluster`) can reassemble the full causal chain from
each proxy's span ring.

Context travels two ways:

- **HTTP hops** carry an ``X-SC-Trace: <trace:08x>-<span:08x>`` request
  header (:data:`TRACE_HEADER`, :class:`TraceContext`) -- client to
  proxy, proxy to peer, proxy to origin -- and proxies echo the header
  on responses so callers learn the trace id they joined;
- **SC-ICP datagrams** carry the trace id in the ICP header's Options
  field and the parent span id in Option Data on ``ICP_OP_QUERY`` (see
  ``docs/wire-protocol.md`` section 1), so a query round on a remote
  peer joins the originating request's trace without touching payload
  formats.

Everything is dependency-free and single-threaded, like the registry.
Ids are 32-bit and non-zero; id 0 means "no context" on every carrier.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ConfigurationError

#: The HTTP header carrying trace context across hops.
TRACE_HEADER = "X-SC-Trace"

_ID_MASK = 0xFFFFFFFF


def format_id(value: int) -> str:
    """A 32-bit id as the 8-hex-digit form used on the wire and in JSON."""
    return f"{value & _ID_MASK:08x}"


@dataclass(frozen=True)
class TraceContext:
    """The propagated slice of a trace: ``(trace_id, span_id)``.

    ``span_id`` is the id of the *sending* span -- the parent of
    whatever span the receiver starts.
    """

    trace_id: int
    span_id: int

    def header_value(self) -> str:
        """Serialized ``X-SC-Trace`` value: ``tttttttt-ssssssss``."""
        return f"{format_id(self.trace_id)}-{format_id(self.span_id)}"

    @classmethod
    def parse(cls, value: str) -> Optional["TraceContext"]:
        """Parse a header value; ``None`` for absent/malformed context.

        Malformed context is never an error: tracing is best-effort and
        a proxy must serve requests from clients that do not speak it.
        """
        head, sep, tail = value.strip().partition("-")
        if not sep or len(head) != 8 or len(tail) != 8:
            return None
        try:
            trace_id = int(head, 16)
            span_id = int(tail, 16)
        except ValueError:
            return None
        if trace_id == 0:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class _IdGenerator:
    """Non-zero 32-bit ids: an ``os.urandom``-seeded counter.

    Seeding from the OS (not the global ``random`` module, which tests
    reseed) makes ids from concurrently running proxies collide with
    probability ~``n**2 / 2**32`` instead of always, so fused cluster
    snapshots keep traces from different processes apart.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = int.from_bytes(os.urandom(4), "big")

    def next_id(self) -> int:
        self._next = (self._next + 1) & _ID_MASK
        if self._next == 0:  # 0 means "no context" everywhere
            self._next = 1
        return self._next


class Span:
    """One named, timed operation within a trace.

    A span is *live* between :class:`SpanRing.start_span` and
    :meth:`end`; ``duration`` is ``None`` while live.  ``attributes``
    carry the decision record (e.g. which summary representation and
    geometry produced a lookup verdict); ``events`` are timestamped
    point-in-time marks within the span (the old trace-ring kinds).
    """

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "start",
        "duration", "status", "attributes", "events",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        start: float,
        attributes: Dict[str, object],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration: Optional[float] = None
        self.status = "unset"
        self.attributes = attributes
        self.events: List[Dict[str, object]] = []

    def context(self) -> TraceContext:
        """The context to propagate to children of this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, **attributes: object) -> "Span":
        """Merge *attributes* into the span's attribute record."""
        self.attributes.update(attributes)
        return self

    def add_event(self, kind: str, **fields: object) -> "Span":
        """Append a timestamped point event within the span."""
        self.events.append(
            {"kind": kind, "timestamp": time.time(), **fields}
        )
        return self

    def end(self, status: str = "ok") -> "Span":
        """Close the span, fixing its duration and final status."""
        if self.duration is None:
            self.duration = time.time() - self.start
            self.status = status
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[object],
    ) -> bool:
        """End the span on every exit path, including cancellation.

        In async code any ``await`` inside the span's extent is a
        cancellation point; ``with ring.start_span(...) as span:`` is
        the only shape that guarantees the span still ends (an unended
        span stays "live" forever and poisons duration aggregates).
        An explicit ``span.end(...)`` inside the block wins -- ``end``
        is idempotent -- so success paths can still record a specific
        status.
        """
        if exc is None:
            self.end("ok")
        elif isinstance(exc, asyncio.CancelledError):
            self.end("cancelled")
        else:
            self.end("error")
        return False

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form; ids in the 8-hex-digit wire format."""
        return {
            "trace_id": format_id(self.trace_id),
            "span_id": format_id(self.span_id),
            "parent_id": (
                format_id(self.parent_id) if self.parent_id else None
            ),
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [dict(event) for event in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name} trace={format_id(self.trace_id)} "
            f"span={format_id(self.span_id)} status={self.status})"
        )


class SpanRing:
    """A bounded buffer of the most recent spans, oldest first.

    Spans enter the ring when *started*, so live spans are visible to a
    scrape; a full ring drops its oldest span and reports the drop via
    the optional ``on_drop`` hook (the proxy wires this to its
    ``trace_ring_dropped_total`` counter) as well as the :attr:`dropped`
    tally.
    """

    #: Mirrors ``MetricsRegistry.enabled``: callers skip propagation
    #: work entirely when the ring is the null one.
    enabled = True

    def __init__(
        self,
        capacity: int = 2048,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self._on_drop = on_drop
        self._ids = _IdGenerator()

    @property
    def capacity(self) -> int:
        """Maximum number of retained spans."""
        return self._capacity

    def new_trace_id(self) -> int:
        """A fresh non-zero 32-bit trace id."""
        return self._ids.next_id()

    def start_span(
        self,
        name: str,
        trace_id: Optional[int] = None,
        parent_id: int = 0,
        **attributes: object,
    ) -> Span:
        """Open a span; a fresh trace id is allocated when none given."""
        if len(self._spans) == self._capacity:
            self.dropped += 1
            if self._on_drop is not None:
                self._on_drop()
        span = Span(
            trace_id=(
                trace_id if trace_id else self.new_trace_id()
            ),
            span_id=self._ids.next_id(),
            parent_id=parent_id,
            name=name,
            start=time.time(),
            attributes=dict(attributes),
        )
        self._spans.append(span)
        return span

    def spans(
        self,
        trace_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> List[Span]:
        """Retained spans, oldest first, optionally filtered."""
        out = []
        for span in self._spans:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if name is not None and span.name != name:
                continue
            out.append(span)
        return out

    def trace(self, trace_id: int) -> List[Span]:
        """Every retained span of one trace, oldest first."""
        return self.spans(trace_id=trace_id)

    def clear(self) -> None:
        """Discard all spans and reset the drop tally."""
        self._spans.clear()
        self.dropped = 0

    def as_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready list of all retained spans."""
        return [span.as_dict() for span in self._spans]

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return (
            f"SpanRing(spans={len(self._spans)}/{self._capacity}, "
            f"dropped={self.dropped})"
        )


class _NullSpan(Span):
    """The shared do-nothing span the null ring hands out.

    Its ids are all zero, which every propagation site already treats
    as "no context": nothing goes on the wire, nothing is retained.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(0, 0, 0, "", 0.0, {})

    def set(self, **attributes: object) -> "Span":
        return self

    def add_event(self, kind: str, **fields: object) -> "Span":
        return self

    def end(self, status: str = "ok") -> "Span":
        return self


#: The span every :class:`NullSpanRing` start returns.
NULL_SPAN = _NullSpan()


class NullSpanRing(SpanRing):
    """The disabled ring: retains nothing, allocates nothing.

    ``new_trace_id`` still returns 0 so disabled proxies put no trace
    context on any wire; the data-plane cost of ``trace_enabled=False``
    is one attribute test per site (benchmarked in
    ``benchmarks/BENCH_obs.json``).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def new_trace_id(self) -> int:
        return 0

    def start_span(
        self,
        name: str,
        trace_id: Optional[int] = None,
        parent_id: int = 0,
        **attributes: object,
    ) -> Span:
        return NULL_SPAN


#: The process-shared disabled ring.
NULL_SPAN_RING = NullSpanRing()
