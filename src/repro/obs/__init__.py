"""End-to-end observability: metrics registry, trace ring, exporters.

The measurement layer the rest of the reproduction reports through:

- :mod:`repro.obs.registry` -- counters, gauges, fixed-bucket
  histograms, ``timed``/``time_block`` phase timing, and the
  zero-cost-when-disabled default-registry switch;
- :mod:`repro.obs.trace` -- a bounded ring buffer of per-request
  message-lifecycle events (ICP query rounds, DIRUPDATE drains/applies);
- :mod:`repro.obs.export` -- Prometheus text / JSON rendering (what the
  proxy's ``GET /metrics`` endpoint and ``summary-cache metrics``
  serve);
- :mod:`repro.obs.logconfig` -- the shared structured-logging setup
  behind the CLI's ``--verbose`` flag.

See ``docs/observability.md`` for the metric and trace-event schemas.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
)
from repro.obs.trace import TraceEvent, TraceRing

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "TraceEvent",
    "TraceRing",
    "configure_logging",
    "disable",
    "enable",
    "get_logger",
    "get_registry",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "set_registry",
]
