"""End-to-end observability: metrics registry, trace ring, exporters.

The measurement layer the rest of the reproduction reports through:

- :mod:`repro.obs.registry` -- counters, gauges, fixed-bucket
  histograms, ``timed``/``time_block`` phase timing, and the
  zero-cost-when-disabled default-registry switch;
- :mod:`repro.obs.trace` -- a bounded ring buffer of per-process
  message-lifecycle events (kept for harness-local logging);
- :mod:`repro.obs.spans` -- request-scoped distributed tracing: spans,
  the per-proxy span ring behind ``GET /trace``, and the
  ``X-SC-Trace``/ICP-Options context propagation model;
- :mod:`repro.obs.cluster` -- the cluster aggregator fusing every
  proxy's ``/metrics`` + ``/trace`` into one snapshot and reassembling
  cross-proxy traces (``summary-cache obs``);
- :mod:`repro.obs.export` -- Prometheus text / JSON rendering (what the
  proxy's ``GET /metrics`` endpoint and ``summary-cache metrics``
  serve);
- :mod:`repro.obs.logconfig` -- the shared structured-logging setup
  behind the CLI's ``--verbose`` flag.

(:mod:`repro.obs.cluster` is not imported here: it drives the proxy
client, and the proxy package imports this one.)

See ``docs/observability.md`` for the metric and span schemas.
"""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
)
from repro.obs.spans import (
    NULL_SPAN_RING,
    TRACE_HEADER,
    NullSpanRing,
    Span,
    SpanRing,
    TraceContext,
    format_id,
)
from repro.obs.trace import TraceEvent, TraceRing

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPAN_RING",
    "NullRegistry",
    "NullSpanRing",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "SpanRing",
    "TRACE_HEADER",
    "TraceContext",
    "TraceEvent",
    "TraceRing",
    "format_id",
    "configure_logging",
    "disable",
    "enable",
    "get_logger",
    "get_registry",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "set_registry",
]
