"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the single measurement surface for the whole
reproduction: the trace-driven simulators, the discrete-event kernel,
the asyncio proxy prototype, and the core filter structures all report
through it, so every Table/Figure number is a registry read instead of
one-off bookkeeping.

Design constraints (in priority order):

1. **Zero cost when disabled.**  The module-level default registry is a
   :data:`NULL_REGISTRY`; instrumented hot paths bind their instruments
   at construction time and skip measurement entirely (a single ``is
   None`` check) when the default registry was the null one.  The
   tier-1 microbenchmarks must not move.
2. **No dependencies.**  Plain dicts, lists and ``bisect``; rendering
   to Prometheus text / JSON lives in :mod:`repro.obs.export`.
3. **Single-threaded.**  Everything here runs on one asyncio loop or
   one simulator thread; instruments use unlocked ``+=``.

Usage::

    from repro import obs

    registry = obs.enable()              # install a live default registry
    requests = registry.counter("http_requests_total", "client requests")
    requests.inc()
    with registry.time_block("startup_seconds"):
        boot()
    print(registry.snapshot())
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from functools import wraps
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
    cast,
)

from repro.errors import ConfigurationError

LabelSpec = Optional[Dict[str, str]]
LabelKey = Tuple[Tuple[str, str], ...]

#: Any concrete instrument the registry can hand out.
Instrument = Union["Counter", "Gauge", "Histogram"]

_I = TypeVar("_I", "Counter", "Gauge", "Histogram")
_F = TypeVar("_F", bound=Callable[..., Any])

#: Default histogram bounds for wall-clock phase timings, in seconds.
#: Spans sub-microsecond filter probes up to multi-second experiment
#: phases (origin delays in the replay experiments are ~1 s).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)


def _label_key(labels: LabelSpec) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelSpec = None) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (registry reset; not part of normal use)."""
        self.value = 0

    def sample(self) -> Dict[str, Any]:
        """One snapshot record."""
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def __repr__(self) -> str:
        return f"Counter({self.name}{self.labels or ''}={self.value})"


class Gauge:
    """A value that can go up and down, or be computed at scrape time.

    :meth:`set_function` registers a callable evaluated on every
    :meth:`current` read -- the idiom for scrape-time values such as
    cache occupancy, so the instrumented object never has to push
    updates on its hot path.
    """

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    def __init__(self, name: str, help: str = "", labels: LabelSpec = None) -> None:
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add *amount* to the gauge."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract *amount* from the gauge."""
        self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the gauge via *fn* at read time (overrides ``set``)."""
        self._fn = fn

    def current(self) -> float:
        """The gauge's value right now (evaluates the callback if set)."""
        if self._fn is not None:
            return self._fn()
        return self._value

    def reset(self) -> None:
        """Zero the stored value (callback gauges are unaffected)."""
        self._value = 0

    def sample(self) -> Dict[str, Any]:
        """One snapshot record."""
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.current(),
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name}{self.labels or ''}={self.current()})"


class Histogram:
    """A fixed-bucket histogram with sum and count.

    *buckets* are ascending upper bounds; an implicit ``+Inf`` bucket
    catches everything above the last bound.  An observation equal to a
    bound lands in that bound's bucket (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    __slots__ = ("name", "help", "labels", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelSpec = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name} needs >= 1 bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name} bounds must be strictly ascending: {bounds}"
            )
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(labels or {})
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def reset(self) -> None:
        """Clear all buckets, the sum, and the count."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def sample(self) -> Dict[str, Any]:
        """One snapshot record."""
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "sum": self.sum,
            "count": self.count,
            # +Inf as the string "+Inf": bare Infinity is not valid JSON.
            "buckets": [
                {
                    "le": "+Inf" if bound == float("inf") else bound,
                    "count": n,
                }
                for bound, n in self.cumulative()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{self.labels or ''}, "
            f"count={self.count}, sum={self.sum:.6f})"
        )


class _NullInstrument:
    """Shared no-op instrument handed out by the null registry."""

    __slots__ = ()
    kind = "null"
    name = ""
    help = ""
    labels: Dict[str, str] = {}

    def inc(self, amount: float = 1) -> None:  # noqa: ARG002 - no-op
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def current(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass

    def sample(self) -> Dict[str, Any]:
        return {}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for every instrument.

    Instruments are keyed by ``(name, sorted label items)``; asking for
    an existing key returns the same object, so independent components
    naturally aggregate into shared series (e.g. every
    :class:`~repro.core.bloom.BloomFilter` increments one
    ``bloom_probes_total``).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Instrument] = {}

    # -- instrument constructors ---------------------------------------

    def _get_or_create(
        self,
        cls: Type[_I],
        name: str,
        help: str,
        labels: LabelSpec,
        **kwargs: Any,
    ) -> _I:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: LabelSpec = None
    ) -> Counter:
        """Get or create the counter *name* with *labels*."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: LabelSpec = None
    ) -> Gauge:
        """Get or create the gauge *name* with *labels*."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelSpec = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram *name* with *labels*."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- timing helpers ------------------------------------------------

    @contextmanager
    def time_block(
        self,
        name: str,
        labels: LabelSpec = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Iterator[None]:
        """Context manager observing the block's wall time into *name*."""
        hist = self.histogram(
            name, help="phase wall time (seconds)", labels=labels,
            buckets=buckets,
        )
        start = time.perf_counter()
        try:
            yield
        finally:
            hist.observe(time.perf_counter() - start)

    def timed(
        self, name: str, labels: LabelSpec = None
    ) -> Callable[[_F], _F]:
        """Decorator timing every call of the wrapped function."""

        def decorate(fn: _F) -> _F:
            hist = self.histogram(
                name, help=f"wall time of {fn.__name__} (seconds)",
                labels=labels,
            )

            @wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                start = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    hist.observe(time.perf_counter() - start)

            return cast(_F, wrapper)

        return decorate

    # -- inspection ----------------------------------------------------

    def collect(self) -> List[Instrument]:
        """All instruments, ordered by (name, labels)."""
        return [
            self._metrics[key] for key in sorted(self._metrics)
        ]

    def snapshot(self) -> List[Dict[str, Any]]:
        """A JSON-ready list of every instrument's current state."""
        return [metric.sample() for metric in self.collect()]

    def reset(self) -> None:
        """Zero every instrument, keeping registrations intact."""
        for metric in self._metrics.values():
            metric.reset()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._metrics)

    def get(self, name: str, labels: LabelSpec = None) -> Optional[Instrument]:
        """Fetch an instrument if it exists, else ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(
        self, name: str, labels: LabelSpec = None, default: float = 0.0
    ) -> float:
        """Shortcut: a counter/gauge's current value, or *default*."""
        metric = self.get(name, labels)
        if metric is None:
            return default
        if isinstance(metric, Gauge):
            return metric.current()
        if isinstance(metric, Counter):
            return metric.value
        raise ConfigurationError(
            f"metric {name!r} is a {metric.kind}; read it via get()"
        )

    def total(self, name: str, default: float = 0.0) -> float:
        """Sum a counter/gauge series across all label sets."""
        found = False
        acc = 0.0
        for (metric_name, _), metric in self._metrics.items():
            if metric_name != name:
                continue
            found = True
            if isinstance(metric, Gauge):
                acc += metric.current()
            elif isinstance(metric, Counter):
                acc += metric.value
            else:
                raise ConfigurationError(
                    f"metric {name!r} is a {metric.kind}; read it via get()"
                )
        return acc if found else default


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    Instrumented constructors check :attr:`enabled` and skip binding
    instruments entirely, so steady-state hot paths pay one attribute
    test and nothing else.
    """

    enabled = False

    def counter(
        self, name: str, help: str = "", labels: LabelSpec = None
    ) -> Counter:
        return cast(Counter, NULL_INSTRUMENT)

    def gauge(
        self, name: str, help: str = "", labels: LabelSpec = None
    ) -> Gauge:
        return cast(Gauge, NULL_INSTRUMENT)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelSpec = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return cast(Histogram, NULL_INSTRUMENT)

    @contextmanager
    def time_block(
        self,
        name: str,
        labels: LabelSpec = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Iterator[None]:
        yield

    def timed(
        self, name: str, labels: LabelSpec = None
    ) -> Callable[[_F], _F]:
        def decorate(fn: _F) -> _F:
            return fn

        return decorate


#: The process-wide disabled registry (the default).
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The current default registry (the null registry unless enabled)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a live default registry.

    Structures bind instruments when constructed, so enable metrics
    *before* building the proxies/simulators you want measured.
    """
    global _default_registry
    if registry is None:
        registry = (
            _default_registry
            if _default_registry.enabled
            else MetricsRegistry()
        )
    _default_registry = registry
    return registry


def disable() -> None:
    """Restore the zero-cost null registry as the default."""
    global _default_registry
    _default_registry = NULL_REGISTRY
