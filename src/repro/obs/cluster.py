"""Cluster-wide observability: fused snapshots and trace reassembly.

A cooperating cluster has no single process that sees the paper's
accounting whole: false hits, remote hits, and inter-proxy message
overhead are relations between events on *different* proxies.  This
module closes that gap by scraping every proxy's ``GET /metrics``
(Prometheus text) and ``GET /trace`` (span-ring JSON), fusing them into
one :class:`ClusterSnapshot` keyed by proxy name.  From the snapshot:

- :meth:`ClusterSnapshot.traces` reassembles cross-proxy traces -- all
  spans sharing one trace id, regardless of which proxy's ring retained
  them -- so a client request on proxy A lines up with the
  ``icp.query`` it caused on proxy B and the ``peer.serve`` that
  answered the fetch;
- :meth:`ClusterSnapshot.false_hit_attribution` compares each proxy's
  *measured* false-hit ratio (the resolution of its SC-ICP query
  rounds) against the *predicted* Fig. 4 false-positive rate its own
  summary advertises at its live geometry and occupancy -- the signal a
  self-tuning summary (ROADMAP item 5) would act on.

The scraper is the proxy's own HTTP client driver, so everything here
works against any cluster the prototype can boot -- in-process test
clusters and ``summary-cache serve`` processes alike.  Scrapes send no
trace context of their own (``send_trace=False``): observing the rings
must not write to them.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.obs.export import parse_prometheus
from repro.proxy.client import ClientDriver


@dataclass
class ProxySnapshot:
    """One proxy's scraped state: metrics plus its span ring."""

    name: str
    host: str
    port: int
    #: ``{metric_name: {label_string: value}}`` from the text scrape.
    metrics: Dict[str, Dict[str, float]]
    #: JSON-ready span dicts, oldest first (``Span.as_dict`` shape).
    spans: List[Dict[str, Any]] = field(default_factory=list)
    trace_enabled: bool = True
    trace_ring_dropped: int = 0
    trace_ring_capacity: int = 0

    def metric(self, name: str, labels: str = "") -> float:
        """One sample value, 0.0 when the proxy never emitted it."""
        return self.metrics.get(name, {}).get(labels, 0.0)

    def metric_total(self, name: str) -> float:
        """Sum of a metric across its label sets."""
        return sum(self.metrics.get(name, {}).values())


@dataclass
class FalseHitAttribution:
    """Measured vs predicted false-hit accounting for one proxy.

    ``measured_ratio`` is the fraction of this proxy's hit-promising
    query rounds that resolved to nobody actually holding the document
    (``false_hits / (false_hits + remote_hits + fetch_failures)``).
    ``predicted_fp_rate`` is the Fig. 4 false-positive probability this
    proxy's *own* summary advertises at its live geometry and occupancy
    -- the rate its peers should experience against it.  Comparing the
    cluster-wide measured ratio with the mean prediction closes the
    paper's Section III loop on live traffic.
    """

    proxy: str
    representation: str
    measured_ratio: float
    predicted_fp_rate: float
    false_hits: int
    remote_hits: int
    fetch_failures: int

    @property
    def rounds(self) -> int:
        """Hit-promising query rounds this proxy resolved."""
        return self.false_hits + self.remote_hits + self.fetch_failures

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "proxy": self.proxy,
            "representation": self.representation,
            "measured_false_hit_ratio": self.measured_ratio,
            "predicted_fp_rate": self.predicted_fp_rate,
            "false_hits": self.false_hits,
            "remote_hits": self.remote_hits,
            "fetch_failures": self.fetch_failures,
            "rounds": self.rounds,
        }


def _representation_of(snapshot: ProxySnapshot) -> str:
    """The summary representation a proxy's labelled counters carry."""
    for labels in snapshot.metrics.get("proxy_dirupdates_sent_total", {}):
        head, sep, tail = labels.partition('="')
        if head == "representation" and sep:
            return tail.rstrip('"')
    return "unknown"


@dataclass
class ClusterSnapshot:
    """Every proxy's scrape, fused and keyed by proxy name."""

    proxies: Dict[str, ProxySnapshot]

    def total(self, metric: str) -> float:
        """Cluster-wide sum of one metric (all proxies, all labels)."""
        return sum(
            snap.metric_total(metric) for snap in self.proxies.values()
        )

    def spans(self) -> List[Dict[str, Any]]:
        """All retained spans cluster-wide, annotated and time-ordered.

        Every span dict gains a ``"proxy"`` key naming the ring it came
        from (also present in its attributes; the top-level copy makes
        the fused form self-describing).
        """
        out: List[Dict[str, Any]] = []
        for name, snap in self.proxies.items():
            for span in snap.spans:
                out.append({**span, "proxy": name})
        out.sort(key=lambda span: span["start"])
        return out

    def traces(self) -> Dict[str, List[Dict[str, Any]]]:
        """All spans grouped by trace id, each group time-ordered."""
        grouped: Dict[str, List[Dict[str, Any]]] = {}
        for span in self.spans():
            grouped.setdefault(span["trace_id"], []).append(span)
        return grouped

    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """One reassembled trace (time-ordered; empty when unknown)."""
        wanted = trace_id.lower()
        return [s for s in self.spans() if s["trace_id"] == wanted]

    def false_hit_attribution(self) -> List[FalseHitAttribution]:
        """Per-proxy measured false-hit ratio vs predicted FP rate."""
        out = []
        for name in sorted(self.proxies):
            snap = self.proxies[name]
            false_hits = int(snap.metric("proxy_icp_false_hits_total"))
            remote_hits = int(snap.metric("proxy_remote_hits_total"))
            failures = int(
                snap.metric("proxy_remote_fetch_failures_total")
            )
            rounds = false_hits + remote_hits + failures
            out.append(
                FalseHitAttribution(
                    proxy=name,
                    representation=_representation_of(snap),
                    measured_ratio=(
                        false_hits / rounds if rounds else 0.0
                    ),
                    predicted_fp_rate=snap.metric(
                        "proxy_summary_predicted_fp_rate"
                    ),
                    false_hits=false_hits,
                    remote_hits=remote_hits,
                    fetch_failures=failures,
                )
            )
        return out

    def as_dict(self) -> Dict[str, Any]:
        """The whole fused snapshot, JSON-ready.

        Carries per-proxy metrics and spans verbatim plus the derived
        views (trace index, false-hit attribution) so a dumped snapshot
        is self-contained for offline analysis.
        """
        traces = self.traces()
        return {
            "proxies": {
                name: {
                    "host": snap.host,
                    "port": snap.port,
                    "trace_enabled": snap.trace_enabled,
                    "trace_ring_dropped": snap.trace_ring_dropped,
                    "trace_ring_capacity": snap.trace_ring_capacity,
                    "metrics": snap.metrics,
                    "spans": snap.spans,
                }
                for name, snap in sorted(self.proxies.items())
            },
            "traces": {
                trace_id: len(spans) for trace_id, spans in traces.items()
            },
            "cross_proxy_traces": sum(
                1
                for spans in traces.values()
                if len({s["proxy"] for s in spans}) > 1
            ),
            "false_hit_attribution": [
                a.as_dict() for a in self.false_hit_attribution()
            ],
            "totals": {
                name: self.total(name)
                for name in (
                    "proxy_http_requests_total",
                    "proxy_local_hits_total",
                    "proxy_remote_hits_total",
                    "proxy_icp_false_hits_total",
                    "proxy_origin_fetches_total",
                    "trace_ring_dropped_total",
                )
            },
        }


async def scrape_proxy(host: str, port: int) -> ProxySnapshot:
    """Scrape one proxy's ``/metrics`` + ``/trace`` into a snapshot."""
    driver = ClientDriver(host, port, send_trace=False)
    try:
        text = (await driver.fetch("/metrics")).decode("utf-8")
        trace_doc = json.loads(
            (await driver.fetch("/trace")).decode("utf-8")
        )
    finally:
        await driver.close()
    return ProxySnapshot(
        name=str(trace_doc["name"]),
        host=host,
        port=port,
        metrics=parse_prometheus(text),
        spans=list(trace_doc["spans"]),
        trace_enabled=bool(trace_doc["enabled"]),
        trace_ring_dropped=int(trace_doc["dropped"]),
        trace_ring_capacity=int(trace_doc["capacity"]),
    )


async def scrape_cluster(
    targets: Sequence[Tuple[str, int]],
) -> ClusterSnapshot:
    """Scrape every ``(host, port)`` target concurrently and fuse.

    Two targets reporting the same proxy name raise
    :class:`~repro.errors.ProtocolError`: the snapshot is keyed by name
    and a silent overwrite would drop a ring.
    """
    snapshots = await asyncio.gather(
        *(scrape_proxy(host, port) for host, port in targets)
    )
    fused: Dict[str, ProxySnapshot] = {}
    for snap in snapshots:
        if snap.name in fused:
            raise ProtocolError(
                f"two scrape targets report proxy name {snap.name!r} "
                f"({fused[snap.name].host}:{fused[snap.name].port} and "
                f"{snap.host}:{snap.port})"
            )
        fused[snap.name] = snap
    return ClusterSnapshot(proxies=fused)


def render_cluster(snapshot: ClusterSnapshot) -> str:
    """A terminal summary of a fused snapshot."""
    lines = []
    header = (
        f"{'proxy':<10} {'requests':>9} {'local':>7} {'remote':>7} "
        f"{'false':>6} {'measured':>9} {'predicted':>10} {'spans':>6} "
        f"{'dropped':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    attribution = {
        a.proxy: a for a in snapshot.false_hit_attribution()
    }
    for name in sorted(snapshot.proxies):
        snap = snapshot.proxies[name]
        attr = attribution[name]
        lines.append(
            f"{name:<10} "
            f"{int(snap.metric('proxy_http_requests_total')):>9} "
            f"{int(snap.metric('proxy_local_hits_total')):>7} "
            f"{attr.remote_hits:>7} "
            f"{attr.false_hits:>6} "
            f"{attr.measured_ratio:>9.4f} "
            f"{attr.predicted_fp_rate:>10.4f} "
            f"{len(snap.spans):>6} "
            f"{snap.trace_ring_dropped:>8}"
        )
    traces = snapshot.traces()
    cross = sum(
        1
        for spans in traces.values()
        if len({s["proxy"] for s in spans}) > 1
    )
    lines.append(
        f"traces: {len(traces)} total, {cross} spanning more than one "
        f"proxy"
    )
    return "\n".join(lines)


def render_trace(spans: List[Dict[str, Any]]) -> str:
    """One reassembled trace as an indented span tree.

    Spans whose parent is not retained anywhere (client-originated
    roots, ring-evicted parents) print at top level.  Children sort by
    start time.
    """
    if not spans:
        return "(no spans)"
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span["parent_id"]
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(span)

    lines: List[str] = [f"trace {spans[0]['trace_id']}"]

    def walk(parent_key: Optional[str], depth: int) -> None:
        for span in sorted(
            children.get(parent_key, []), key=lambda s: s["start"]
        ):
            duration = span["duration"]
            took = f"{duration * 1e3:.2f}ms" if duration is not None else "live"
            attrs = span["attributes"]
            detail = " ".join(
                f"{key}={attrs[key]}"
                for key in ("url", "outcome", "source", "hit", "peer")
                if key in attrs
            )
            lines.append(
                f"{'  ' * (depth + 1)}{span['name']} "
                f"[{span['proxy']}] {took}"
                + (f" {detail}" if detail else "")
            )
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)
