"""The Cache Array Routing Protocol (CARP) baseline.

The paper's related work: "The cache array routing protocol divides
URL-space among an array of loosely coupled proxy servers, and lets
each proxy cache only the documents whose URL's are hashed to it.  An
advantage of the approach is that it eliminates duplicate copies of
documents.  However, it is not clear how well the approach performs
for wide-area cache sharing, where proxies are distributed over a
regional network" -- each proxy is much closer to its own users than
to the others, so requests routed to a remote owner pay a wide-area
hop even on a hit.

The hash-routing math itself lives in :mod:`repro.placement.ring`
(rendezvous hashing over the interned MD5 digests of
:mod:`repro.core.position_cache`); this module re-exports
:func:`carp_owner` from there so the simulator and the live proxy
data plane route every URL to the same owner from one implementation.

This simulator measures what the paper's argument needs:

- the hit ratio (no duplicates -> effectively a partitioned global
  cache);
- the **remote-routing ratio**: the fraction of requests a client's
  proxy must forward to a *different* proxy, hit or miss -- CARP's
  wide-area cost, which summary cache avoids by serving local hits
  locally;
- per-proxy load balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cache import WebCache
from repro.placement.ring import carp_owner
from repro.traces.model import Trace
from repro.traces.partition import group_of

__all__ = ["CarpResult", "carp_owner", "simulate_carp"]


@dataclass
class CarpResult:
    """Outcome of one CARP simulation."""

    trace_name: str
    num_proxies: int
    requests: int = 0
    hits: int = 0
    local_routed: int = 0
    remote_routed: int = 0
    per_proxy_requests: List[int] = field(default_factory=list)

    @property
    def hit_ratio(self) -> float:
        """Requests served from some array member's cache."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def remote_routing_ratio(self) -> float:
        """Requests that had to cross the wide area to their owner."""
        return (
            self.remote_routed / self.requests if self.requests else 0.0
        )

    @property
    def load_imbalance(self) -> float:
        """Max over mean per-proxy request load (1.0 = perfectly even)."""
        if not self.per_proxy_requests or not self.requests:
            return 0.0
        mean = self.requests / len(self.per_proxy_requests)
        return max(self.per_proxy_requests) / mean if mean else 0.0


def simulate_carp(
    trace: Trace,
    num_proxies: int,
    capacity_per_proxy: int,
    policy: str = "lru",
) -> CarpResult:
    """Run CARP over *trace*: every URL lives only at its hash owner."""
    caches = [
        WebCache(capacity_per_proxy, policy=policy)
        for _ in range(num_proxies)
    ]
    result = CarpResult(
        trace_name=trace.name,
        num_proxies=num_proxies,
        per_proxy_requests=[0] * num_proxies,
    )
    owner_cache: Dict[str, int] = {}

    for req in trace:
        local = group_of(req.client_id, num_proxies)
        owner = owner_cache.get(req.url)
        if owner is None:
            owner = carp_owner(req.url, num_proxies)
            owner_cache[req.url] = owner
        result.requests += 1
        result.per_proxy_requests[owner] += 1
        if owner == local:
            result.local_routed += 1
        else:
            result.remote_routed += 1

        cache = caches[owner]
        entry = cache.get(req.url, version=req.version, size=req.size)
        if entry is not None:
            result.hits += 1
        else:
            cache.put(req.url, req.size, version=req.version)

    return result
