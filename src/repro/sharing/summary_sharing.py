"""The summary cache simulator (Section V) and the ICP message baseline.

Each proxy maintains:

- its document cache (:class:`repro.cache.WebCache`);
- a **local summary** of its own directory, updated on every insert and
  evict via cache callbacks;
- a **shipped summary** -- the copy its peers currently hold.  The
  simulation assumes updates reach all peers reliably and atomically
  (the paper's simulation assumption), so one shipped copy per proxy
  stands in for the n-1 identical peer copies.

On a local miss, the requesting proxy probes every peer's shipped
summary and queries exactly the peers whose summaries say "maybe"
(sending one query and receiving one reply per queried peer).  The
four outcome classes of Section V -- remote hit, false hit, false miss,
remote stale hit -- are tallied along with message counts and bytes
under the paper's size model (:mod:`repro.sharing.messages`).

Update dissemination is governed by an update policy from
:mod:`repro.summaries.policies` (threshold / interval / packet-fill;
re-exported here for compatibility with pre-refactor imports).  A
threshold of 0 means peers always see the live directory (the "no
update delay" top line of Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional

from repro.cache import WebCache
from repro.errors import ConfigurationError
from repro.obs.registry import get_registry
from repro.sharing.messages import (
    QUERY_MESSAGE_BYTES,
    bloom_update_bytes,
    digest_update_bytes,
    whole_filter_update_bytes,
)
from repro.sharing.results import SharingResult
from repro.sharing.schemes import Capacity, resolve_capacities
from repro.summaries import (
    AVERAGE_DOCUMENT_SIZE,
    BitFlipDelta,
    DigestDelta,
    IntervalUpdatePolicy,
    PacketFillUpdatePolicy,
    SummaryConfig,
    SummaryNode,
    ThresholdUpdatePolicy,
    UpdatePolicy,
)
from repro.traces.partition import TraceLike, grouped_chunks

__all__ = [
    "IntervalUpdatePolicy",
    "PacketFillUpdatePolicy",
    "SummarySharingConfig",
    "ThresholdUpdatePolicy",
    "UpdatePolicy",
    "simulate_icp",
    "simulate_summary_sharing",
]


@dataclass(frozen=True)
class SummarySharingConfig:
    """Configuration of one summary cache simulation."""

    summary: SummaryConfig = field(default_factory=SummaryConfig)
    update_policy: UpdatePolicy = field(
        default_factory=ThresholdUpdatePolicy
    )
    policy: str = "lru"
    #: Average cacheable document size used to size Bloom filters
    #: (cache bytes / doc size = expected documents).  The paper divides
    #: by 8 KB; heavy-tailed synthetic workloads should pass their
    #: actual mean cacheable size (:func:`repro.traces.stats.
    #: mean_cacheable_size`) or the effective load factor degrades.
    expected_doc_size: int = AVERAGE_DOCUMENT_SIZE

    def label(self) -> str:
        return f"{self.summary.label()}/{self.update_policy.label()}"


class _ProxyState:
    """Per-proxy simulation state: a cache wired to a summary node.

    All summary plumbing (local/shipped copies, update bookkeeping)
    lives in :class:`repro.summaries.SummaryNode`; this class only pairs
    it with the document cache driving its callbacks.
    """

    __slots__ = ("cache", "node")

    def __init__(self, capacity: int, config: SummarySharingConfig) -> None:
        self.node = SummaryNode(
            config.summary, capacity, doc_size=config.expected_doc_size
        )
        self.cache = WebCache(
            capacity,
            policy=config.policy,
            on_insert=self.node.on_insert,
            on_evict=self.node.on_evict,
        )


class _SharingMetrics:
    """Registry counters for one simulation run, labelled by scheme.

    The Figs. 6-8 numbers (false hits, messages, bytes) increment here
    as they happen, so a registry snapshot mid- or post-run reads the
    same series the :class:`~repro.sharing.results.SharingResult`
    reports -- no parallel bookkeeping to reconcile.
    """

    __slots__ = (
        "requests", "local_hits", "remote_hits", "false_hits",
        "false_misses", "query_messages", "query_bytes",
        "update_drains", "update_messages", "update_bytes",
    )

    def __init__(self, registry, scheme: str) -> None:
        labels = {"scheme": scheme}

        def counter(name: str, help: str):
            return registry.counter(name, help, labels=labels)

        self.requests = counter(
            "sharing_requests_total", "requests simulated"
        )
        self.local_hits = counter(
            "sharing_local_hits_total", "fresh hits in the local cache"
        )
        self.remote_hits = counter(
            "sharing_remote_hits_total", "fresh hits served by a peer"
        )
        self.false_hits = counter(
            "sharing_false_hits_total",
            "query rounds where no queried peer held the document (Fig. 6)",
        )
        self.false_misses = counter(
            "sharing_false_misses_total",
            "fresh peer copies the summaries failed to reveal",
        )
        self.query_messages = counter(
            "sharing_query_messages_total", "ICP queries sent (Fig. 7)"
        )
        self.query_bytes = counter(
            "sharing_query_bytes_total", "ICP query bytes sent (Fig. 8)"
        )
        self.update_drains = counter(
            "sharing_update_drains_total",
            "summary deltas drained and published",
        )
        self.update_messages = counter(
            "sharing_update_messages_total",
            "summary update messages shipped (Fig. 7)",
        )
        self.update_bytes = counter(
            "sharing_update_bytes_total",
            "summary update bytes shipped (Fig. 8)",
        )


def _bind_metrics(scheme: str) -> Optional[_SharingMetrics]:
    """Per-run counters from the default registry; ``None`` if disabled."""
    registry = get_registry()
    if not registry.enabled:
        return None
    return _SharingMetrics(registry, scheme)


def _delta_bytes(delta, num_bits: Optional[int] = None) -> int:
    """Wire size of one update carrying *delta*.

    For Bloom summaries the sender picks the cheaper encoding between
    the flip-record delta and the whole bit array ("the proxy can
    either specify which bits in the bit array are flipped, or send the
    whole array, whichever is smaller"); pass *num_bits* to enable that
    comparison.
    """
    if isinstance(delta, BitFlipDelta):
        delta_cost = bloom_update_bytes(delta.change_count)
        if num_bits is not None:
            return min(delta_cost, whole_filter_update_bytes(num_bits))
        return delta_cost
    if isinstance(delta, DigestDelta):
        return digest_update_bytes(delta.change_count)
    raise ConfigurationError(f"unknown delta type {type(delta).__name__}")


def simulate_summary_sharing(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    config: Optional[SummarySharingConfig] = None,
) -> SharingResult:
    """Run the summary cache protocol over *trace*.

    Returns a :class:`~repro.sharing.results.SharingResult` with the full
    hit taxonomy, message counts, and summary memory footprint.
    *capacity_per_proxy* may be one size for all proxies or a per-proxy
    sequence (proportional allocation under load imbalance).

    *trace* may be a materialized :class:`~repro.traces.model.Trace`, an
    mmap-backed :class:`~repro.traces.binary.BinaryTraceReader`, or any
    request iterable; the replay consumes it once, chunk by chunk, so a
    streamed trace is never resident in memory.  Counters are bit-exact
    across all three for the same request stream.
    """
    cfg = config or SummarySharingConfig()
    capacities = resolve_capacities(num_proxies, capacity_per_proxy)
    proxies = [_ProxyState(size, cfg) for size in capacities]
    live = (
        isinstance(cfg.update_policy, ThresholdUpdatePolicy)
        and cfg.update_policy.live
    )
    result = SharingResult(
        scheme=f"summary/{cfg.label()}",
        trace_name=getattr(trace, "name", "stream"),
        num_proxies=num_proxies,
        cache_capacity_bytes=sum(capacities) // num_proxies,
    )
    msgs = result.messages
    m = _bind_metrics(result.scheme)
    sim_start = perf_counter()
    # All proxies share one hash family and filter geometry, so the
    # probe key (MD5 digest / server name / bit positions) of a URL is
    # identical at every peer: derive it once per URL per run via this
    # plain dict, the cheapest possible lookup on the hot path.  The
    # derivation underneath (MD5 digest / bit positions) additionally
    # flows through the process-wide HashPositionCache
    # (repro.core.position_cache), which survives across runs -- so in a
    # multi-cell grid over one trace, later cells warm-start instead of
    # re-hashing every URL, and disabling that cache gives an honest
    # recompute-everything baseline for benchmarks.
    key_cache: dict = {}
    key_of = proxies[0].node.local.key_of if proxies else None

    # Replay in chunks: group ids for a whole chunk are derived in one
    # sweep, and the per-request protocol logic below is untouched, so
    # results are bit-exact with the one-request-at-a-time loop.
    for chunk in grouped_chunks(trace, num_proxies):
        for g, req in chunk:
            me = proxies[g]
            result.requests += 1
            result.bytes_requested += req.size
            if m is not None:
                m.requests.inc()

            entry = me.cache.get(req.url, version=req.version, size=req.size)
            if entry is not None:
                result.local_hits += 1
                result.bytes_hit += entry.size
                if m is not None:
                    m.local_hits.inc()
                continue

            # Probe peers' summaries (live or shipped) and query the
            # promising ones.
            key = key_cache.get(req.url)
            if key is None:
                key = key_of(req.url)
                key_cache[req.url] = key
            candidates = []
            for j, peer in enumerate(proxies):
                if j == g:
                    continue
                summary = peer.node.local if live else peer.node.shipped
                if summary.contains_key(key):
                    candidates.append(j)

            if candidates:
                msgs.query_messages += len(candidates)
                msgs.reply_messages += len(candidates)
                msgs.query_bytes += QUERY_MESSAGE_BYTES * len(candidates)
                msgs.reply_bytes += QUERY_MESSAGE_BYTES * len(candidates)
                if m is not None:
                    m.query_messages.inc(len(candidates))
                    m.query_bytes.inc(QUERY_MESSAGE_BYTES * len(candidates))
                fresh = None
                stale_seen = False
                for j in candidates:
                    outcome = proxies[j].cache.probe(req.url, req.version)
                    if outcome == "hit":
                        fresh = j
                        break
                    if outcome == "stale":
                        stale_seen = True
                if fresh is not None:
                    result.remote_hits += 1
                    result.bytes_hit += req.size
                    proxies[fresh].cache.touch(req.url)
                    if m is not None:
                        m.remote_hits.inc()
                elif stale_seen:
                    result.remote_stale_hits += 1
                    if _oracle_fresh_elsewhere(
                        proxies, g, candidates, req.url, req.version
                    ):
                        result.false_misses += 1
                        if m is not None:
                            m.false_misses.inc()
                else:
                    result.false_hits += 1
                    if m is not None:
                        m.false_hits.inc()
                    if _oracle_fresh_elsewhere(
                        proxies, g, candidates, req.url, req.version
                    ):
                        result.false_misses += 1
                        if m is not None:
                            m.false_misses.inc()
            else:
                if _oracle_fresh_elsewhere(
                    proxies, g, (), req.url, req.version
                ):
                    result.false_misses += 1
                    if m is not None:
                        m.false_misses.inc()

            # Fetch (from peer or origin) and cache locally, then check the
            # update trigger -- insertion may have pushed us past threshold.
            me.cache.put(req.url, req.size, version=req.version)
            if not live and me.node.due_for_update(
                cfg.update_policy, req.timestamp, len(me.cache)
            ):
                delta = me.node.publish(req.timestamp)
                fanout = num_proxies - 1
                num_bits = getattr(me.node.local, "num_bits", None)
                update_bytes = _delta_bytes(delta, num_bits) * fanout
                msgs.update_messages += fanout
                msgs.update_bytes += update_bytes
                if m is not None:
                    m.update_drains.inc()
                    m.update_messages.inc(fanout)
                    m.update_bytes.inc(update_bytes)

    if m is not None:
        get_registry().histogram(
            "sharing_simulation_seconds",
            "wall time of one sharing simulation",
            labels={"scheme": result.scheme},
        ).observe(perf_counter() - sim_start)
    result.local_stale_hits = sum(
        p.cache.stats.stale_hits for p in proxies
    )
    # Memory per proxy: one remote copy per peer, plus this proxy's own
    # local structure (counters included for Bloom summaries).
    if proxies:
        remote = proxies[0].node.local.remote_size_bytes()
        local = proxies[0].node.local.size_bytes()
        result.summary_memory_bytes = remote * (num_proxies - 1) + local
    return result


def _oracle_fresh_elsewhere(
    proxies: List[_ProxyState],
    requester: int,
    already_queried,
    url: str,
    version: int,
) -> bool:
    """True if a *non-queried* peer holds a fresh copy (a false miss)."""
    queried = set(already_queried)
    for j, peer in enumerate(proxies):
        if j == requester or j in queried:
            continue
        if peer.cache.probe(url, version) == "hit":
            return True
    return False


def simulate_icp(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    policy: str = "lru",
) -> SharingResult:
    """Simple sharing with ICP's message pattern.

    "Every time one proxy has a cache miss, everyone else receives and
    processes a query message" -- each local miss multicasts a query to
    all n-1 peers, and each peer replies.
    """
    capacities = resolve_capacities(num_proxies, capacity_per_proxy)
    caches = [WebCache(size, policy=policy) for size in capacities]
    result = SharingResult(
        scheme="icp",
        trace_name=getattr(trace, "name", "stream"),
        num_proxies=num_proxies,
        cache_capacity_bytes=sum(capacities) // num_proxies,
    )
    msgs = result.messages
    m = _bind_metrics(result.scheme)
    sim_start = perf_counter()

    for chunk in grouped_chunks(trace, num_proxies):
        for g, req in chunk:
            cache = caches[g]
            result.requests += 1
            result.bytes_requested += req.size
            if m is not None:
                m.requests.inc()
            entry = cache.get(req.url, version=req.version, size=req.size)
            if entry is not None:
                result.local_hits += 1
                result.bytes_hit += entry.size
                if m is not None:
                    m.local_hits.inc()
                continue

            fanout = num_proxies - 1
            msgs.query_messages += fanout
            msgs.reply_messages += fanout
            msgs.query_bytes += QUERY_MESSAGE_BYTES * fanout
            msgs.reply_bytes += QUERY_MESSAGE_BYTES * fanout
            if m is not None:
                m.query_messages.inc(fanout)
                m.query_bytes.inc(QUERY_MESSAGE_BYTES * fanout)

            fresh = None
            stale_seen = False
            for j, peer in enumerate(caches):
                if j == g:
                    continue
                outcome = peer.probe(req.url, req.version)
                if outcome == "hit" and fresh is None:
                    fresh = j
                elif outcome == "stale":
                    stale_seen = True
            if fresh is not None:
                result.remote_hits += 1
                result.bytes_hit += req.size
                caches[fresh].touch(req.url)
                if m is not None:
                    m.remote_hits.inc()
            elif stale_seen:
                result.remote_stale_hits += 1
            cache.put(req.url, req.size, version=req.version)

    if m is not None:
        get_registry().histogram(
            "sharing_simulation_seconds",
            "wall time of one sharing simulation",
            labels={"scheme": result.scheme},
        ).observe(perf_counter() - sim_start)
    result.local_stale_hits = sum(c.stats.stale_hits for c in caches)
    return result
