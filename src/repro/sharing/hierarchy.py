"""Hierarchical cache sharing: summary cache between children and a parent.

Section VIII: "summary cache enhanced ICP can be used between parent
and child proxies.  The difference between a sibling proxy and a parent
proxy is that a proxy can not ask a sibling proxy to fetch a document
from the server, but can ask a parent proxy to do so."

This simulator models a two-level hierarchy (the Questnet topology:
child proxies of a regional network behind one parent):

1. a request first tries its child proxy's cache;
2. on a miss, optionally the SC-ICP *sibling* protocol runs among the
   children (summaries + targeted queries; a sibling serves only from
   cache);
3. otherwise the request goes to the **parent**, which serves from its
   own cache or fetches from the origin on the child's behalf (and
   caches the result);
4. the child caches whatever it receives.

The parent sees only the children's (post-sibling) misses -- exactly
the stream the paper says the Questnet trace records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache import WebCache
from repro.core.summary import SummaryConfig
from repro.errors import ConfigurationError
from repro.sharing.messages import QUERY_MESSAGE_BYTES
from repro.sharing.summary_sharing import (
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    _delta_bytes,
    _ProxyState,
)
from repro.traces.model import Trace
from repro.traces.partition import group_of


@dataclass
class HierarchyResult:
    """Outcome of one hierarchical simulation."""

    trace_name: str
    num_children: int
    requests: int = 0
    child_hits: int = 0
    sibling_hits: int = 0
    parent_hits: int = 0
    origin_fetches: int = 0
    sibling_query_messages: int = 0
    sibling_update_messages: int = 0
    sibling_query_bytes: int = 0
    sibling_update_bytes: int = 0
    parent_requests: int = 0

    @property
    def child_hit_ratio(self) -> float:
        """Requests served by the requesting child's own cache."""
        return self.child_hits / self.requests if self.requests else 0.0

    @property
    def total_hit_ratio(self) -> float:
        """Requests that avoided the origin server entirely."""
        hits = self.child_hits + self.sibling_hits + self.parent_hits
        return hits / self.requests if self.requests else 0.0

    @property
    def origin_traffic_ratio(self) -> float:
        """Fraction of requests reaching the origin."""
        return (
            self.origin_fetches / self.requests if self.requests else 0.0
        )


def simulate_hierarchy(
    trace: Trace,
    num_children: int,
    child_capacity: int,
    parent_capacity: int,
    sibling_sharing: bool = True,
    summary_config: Optional[SummarySharingConfig] = None,
) -> HierarchyResult:
    """Run the two-level hierarchy over *trace*.

    ``sibling_sharing=False`` gives the plain hierarchy (children +
    parent only); ``True`` adds the SC-ICP protocol among the children,
    which offloads the parent.
    """
    if num_children < 1:
        raise ConfigurationError("num_children must be >= 1")
    cfg = summary_config or SummarySharingConfig(
        summary=SummaryConfig(kind="bloom", load_factor=16),
        update_policy=ThresholdUpdatePolicy(0.01),
    )
    children = [
        _ProxyState(child_capacity, cfg) for _ in range(num_children)
    ]
    parent = WebCache(parent_capacity)
    result = HierarchyResult(
        trace_name=trace.name, num_children=num_children
    )
    live = (
        isinstance(cfg.update_policy, ThresholdUpdatePolicy)
        and cfg.update_policy.live
    )
    key_cache: dict = {}
    key_of = children[0].node.local.key_of

    for req in trace:
        g = group_of(req.client_id, num_children)
        me = children[g]
        result.requests += 1

        entry = me.cache.get(req.url, version=req.version, size=req.size)
        if entry is not None:
            result.child_hits += 1
            continue

        served = False
        if sibling_sharing and num_children > 1:
            key = key_cache.get(req.url)
            if key is None:
                key = key_of(req.url)
                key_cache[req.url] = key
            candidates = []
            for j, peer in enumerate(children):
                if j == g:
                    continue
                summary = peer.node.local if live else peer.node.shipped
                if summary.contains_key(key):
                    candidates.append(j)
            if candidates:
                result.sibling_query_messages += len(candidates)
                result.sibling_query_bytes += (
                    QUERY_MESSAGE_BYTES * len(candidates)
                )
                for j in candidates:
                    if (
                        children[j].cache.probe(req.url, req.version)
                        == "hit"
                    ):
                        result.sibling_hits += 1
                        children[j].cache.touch(req.url)
                        served = True
                        break

        if not served:
            # Ask the parent: it serves from cache or fetches upstream.
            result.parent_requests += 1
            parent_entry = parent.get(
                req.url, version=req.version, size=req.size
            )
            if parent_entry is not None:
                result.parent_hits += 1
            else:
                result.origin_fetches += 1
                parent.put(req.url, req.size, version=req.version)

        me.cache.put(req.url, req.size, version=req.version)
        if (
            sibling_sharing
            and not live
            and me.node.due_for_update(
                cfg.update_policy, req.timestamp, len(me.cache)
            )
        ):
            delta = me.node.publish(req.timestamp)
            fanout = num_children - 1
            result.sibling_update_messages += fanout
            result.sibling_update_bytes += _delta_bytes(delta) * fanout

    return result
