"""The four cooperation schemes of Section III (Fig. 1).

All four simulators consume the same input: a trace and a group count.
The trace is processed in global timestamp order; each request belongs to
the proxy its client maps to (clientid mod groups).  Cache capacity is
specified per proxy; the global-cache scheme pools the capacities.

Remote lookups here are *oracle* lookups -- the schemes of Section III
study the benefit of sharing assuming a perfect discovery mechanism
(the paper simulates ICP-style sharing without modelling its messages;
message overhead is the subject of Sections IV-V).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.cache import WebCache
from repro.errors import ConfigurationError
from repro.placement.policy import CooperationPolicy
from repro.sharing.results import SharingResult
from repro.traces.partition import TraceLike, grouped_chunks

#: Per-proxy capacity: one size for all, or one size per proxy (the
#: paper's prescription under load imbalance is "to allocate cache size
#: of each proxy to be proportional to its user population size").
Capacity = Union[int, Sequence[int]]


def resolve_capacities(
    num_proxies: int, capacity: Capacity
) -> List[int]:
    """Expand a scalar or per-proxy capacity spec into one int per proxy."""
    if isinstance(capacity, int):
        sizes = [capacity] * num_proxies
    else:
        sizes = list(capacity)
        if len(sizes) != num_proxies:
            raise ConfigurationError(
                f"got {len(sizes)} capacities for {num_proxies} proxies"
            )
    if any(size < 1 for size in sizes):
        raise ConfigurationError("every capacity must be >= 1")
    return sizes


def _make_caches(
    num_proxies: int, capacity_per_proxy: Capacity, policy: str
) -> List[WebCache]:
    return [
        WebCache(size, policy=policy)
        for size in resolve_capacities(num_proxies, capacity_per_proxy)
    ]


def simulate_no_sharing(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    policy: str = "lru",
) -> SharingResult:
    """Each proxy serves only its own clients; misses go to the origin."""
    caches = _make_caches(num_proxies, capacity_per_proxy, policy)
    result = SharingResult(
        scheme="no-sharing",
        trace_name=getattr(trace, "name", "stream"),
        num_proxies=num_proxies,
        cache_capacity_bytes=sum(c.capacity_bytes for c in caches)
        // num_proxies,
    )
    # Chunked replay: group ids for a whole chunk are derived in one
    # sweep (see repro.traces.partition.grouped_chunks); per-request
    # logic is unchanged, so results match the per-request loop exactly.
    for chunk in grouped_chunks(trace, num_proxies):
        for g, req in chunk:
            cache = caches[g]
            result.requests += 1
            result.bytes_requested += req.size
            entry = cache.get(req.url, version=req.version, size=req.size)
            if entry is not None:
                result.local_hits += 1
                result.bytes_hit += entry.size
                continue
            cache.put(req.url, req.size, version=req.version)
    result.local_stale_hits = sum(c.stats.stale_hits for c in caches)
    return result


def _simulate_discovery_sharing(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    policy: str,
    cooperation: CooperationPolicy,
    scheme: str,
) -> SharingResult:
    """Shared replay loop for the discovery-based sharing schemes.

    The only difference between simple sharing and single-copy sharing
    is the storage rule after a remote hit, and that rule is exactly
    :attr:`repro.placement.policy.CooperationPolicy.caches_remote_hits`:
    the requester either stores the fetched document locally (simple
    sharing / summary cache) or leaves the single copy at the serving
    peer, which merely refreshes its recency.
    """
    caches = _make_caches(num_proxies, capacity_per_proxy, policy)
    result = SharingResult(
        scheme=scheme,
        trace_name=getattr(trace, "name", "stream"),
        num_proxies=num_proxies,
        cache_capacity_bytes=sum(c.capacity_bytes for c in caches)
        // num_proxies,
    )
    caches_remote_hits = cooperation.caches_remote_hits
    for chunk in grouped_chunks(trace, num_proxies):
        for g, req in chunk:
            cache = caches[g]
            result.requests += 1
            result.bytes_requested += req.size
            entry = cache.get(req.url, version=req.version, size=req.size)
            if entry is not None:
                result.local_hits += 1
                result.bytes_hit += entry.size
                continue
            holder = _find_fresh_peer(caches, g, req.url, req.version)
            if holder is not None:
                result.remote_hits += 1
                result.bytes_hit += req.size
                caches[holder].touch(req.url)  # serving peer refreshes recency
                if not caches_remote_hits:
                    continue  # not cached locally -- that is the point
            elif _any_stale_peer(caches, g, req.url, req.version):
                result.remote_stale_hits += 1
            cache.put(req.url, req.size, version=req.version)
    result.local_stale_hits = sum(c.stats.stale_hits for c in caches)
    return result


def simulate_simple_sharing(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    policy: str = "lru",
) -> SharingResult:
    """ICP-style sharing: fetch from a fresh peer copy, then cache locally.

    "Once a proxy fetches a document from another proxy, it caches the
    document locally.  Proxies do not coordinate cache replacements."
    """
    return _simulate_discovery_sharing(
        trace,
        num_proxies,
        capacity_per_proxy,
        policy,
        CooperationPolicy.SUMMARY,
        scheme="simple-sharing",
    )


def simulate_single_copy_sharing(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    policy: str = "lru",
) -> SharingResult:
    """Sharing without duplication: a remote hit only touches the peer copy.

    "A proxy does not cache documents fetched from another proxy.
    Rather, the other proxy marks the document as most-recently-accessed,
    and increases its caching priority."
    """
    return _simulate_discovery_sharing(
        trace,
        num_proxies,
        capacity_per_proxy,
        policy,
        CooperationPolicy.SINGLE_COPY,
        scheme="single-copy",
    )


def simulate_global_cache(
    trace: TraceLike,
    num_proxies: int,
    capacity_per_proxy: Capacity,
    policy: str = "lru",
    capacity_scale: float = 1.0,
) -> SharingResult:
    """Fully coordinated caching: one unified LRU of the pooled capacity.

    *capacity_scale* shrinks the pooled capacity; the paper also runs a
    "global cache 10% smaller" variant (``capacity_scale=0.9``) to bound
    the space wasted by duplicate copies in simple sharing.
    """
    if capacity_scale <= 0:
        raise ConfigurationError(
            f"capacity_scale must be > 0, got {capacity_scale}"
        )
    total = sum(resolve_capacities(num_proxies, capacity_per_proxy))
    pooled = max(1, int(total * capacity_scale))
    cache = WebCache(pooled, policy=policy)
    label = "global" if capacity_scale == 1.0 else f"global-{capacity_scale:g}x"
    result = SharingResult(
        scheme=label,
        trace_name=getattr(trace, "name", "stream"),
        num_proxies=num_proxies,
        cache_capacity_bytes=pooled // num_proxies,
    )
    for req in trace:
        result.requests += 1
        result.bytes_requested += req.size
        entry = cache.get(req.url, version=req.version, size=req.size)
        if entry is not None:
            result.local_hits += 1
            result.bytes_hit += entry.size
            continue
        cache.put(req.url, req.size, version=req.version)
    result.local_stale_hits = cache.stats.stale_hits
    return result


def _find_fresh_peer(
    caches: List[WebCache], requester: int, url: str, version: int
) -> Optional[int]:
    """Index of a peer holding a fresh copy, or ``None``."""
    for i, cache in enumerate(caches):
        if i == requester:
            continue
        if cache.probe(url, version) == "hit":
            return i
    return None


def _any_stale_peer(
    caches: List[WebCache], requester: int, url: str, version: int
) -> bool:
    """True if some peer holds a stale copy of *url*."""
    for i, cache in enumerate(caches):
        if i == requester:
            continue
        if cache.probe(url, version) == "stale":
            return True
    return False
