"""The paper's interproxy message-size model (Section V-D).

Fig. 8 estimates message bytes with these assumptions, quoted:

    "The average size of query messages in both ICP and other approaches
    is assumed to be 20 bytes of header and 50 bytes of average URL.
    The size of summary updates in exact-directory and server-name is
    assumed to be 20 bytes of header and 16 bytes per change.  The size
    of summary updates in Bloom filter based summaries is estimated at
    32 bytes of header plus 4 bytes per bit-flip."

These constants are kept as module attributes (not buried in code) so the
benchmark harness can print the assumptions next to the results.
"""

from __future__ import annotations

#: Query/reply message size: 20-byte header + 50-byte average URL.
QUERY_MESSAGE_BYTES = 20 + 50

#: Header of an exact-directory or server-name update message.
DIGEST_UPDATE_HEADER_BYTES = 20

#: Bytes per change record (one MD5 digest) in a digest update.
DIGEST_CHANGE_BYTES = 16

#: Header of a Bloom filter update message (the ICP header plus the
#: Function_Num / Function_Bits / BitArray_Size_InBits /
#: Number_of_Updates extension header of Section VI-A).
BLOOM_UPDATE_HEADER_BYTES = 32

#: Bytes per bit-flip record (a 32-bit integer: MSB = new value, low 31
#: bits = bit index).
BLOOM_FLIP_BYTES = 4


def digest_update_bytes(change_count: int) -> int:
    """Size of one exact-directory/server-name update message."""
    return DIGEST_UPDATE_HEADER_BYTES + DIGEST_CHANGE_BYTES * change_count


def bloom_update_bytes(flip_count: int) -> int:
    """Size of one Bloom filter delta update message."""
    return BLOOM_UPDATE_HEADER_BYTES + BLOOM_FLIP_BYTES * flip_count


def whole_filter_update_bytes(num_bits: int) -> int:
    """Size of a whole-bit-array update (the Squid cache-digest style).

    Used by the update-encoding ablation: for large thresholds shipping
    the entire array beats shipping flips ("the proxy can either specify
    which bits in the bit array are flipped, or send the whole array,
    whichever is smaller").
    """
    return BLOOM_UPDATE_HEADER_BYTES + (num_bits + 7) // 8
