"""Result records shared by the cache-sharing simulators."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MessageCounts:
    """Interproxy protocol traffic accumulated during a simulation.

    Messages are unicast; a query round to *c* candidate peers counts
    *c* queries and *c* replies, and one summary update shipped to
    *n - 1* peers counts *n - 1* update messages (matching the paper's
    "All messages are assumed to be uni-cast messages").
    """

    query_messages: int = 0
    reply_messages: int = 0
    update_messages: int = 0
    query_bytes: int = 0
    reply_bytes: int = 0
    update_bytes: int = 0

    @property
    def total_messages(self) -> int:
        """Queries plus updates -- the paper's Fig. 7 accounting.

        The paper counts "inquiries" and update messages; replies are
        tracked separately (:attr:`reply_messages`) because the wire
        protocol does send them, but they are excluded here to match
        the paper's normalization.
        """
        return self.query_messages + self.update_messages

    @property
    def total_bytes(self) -> int:
        """Query plus update bytes (Fig. 8's accounting)."""
        return self.query_bytes + self.update_bytes

    @property
    def total_messages_with_replies(self) -> int:
        """All interproxy messages including replies (wire-level count)."""
        return (
            self.query_messages + self.reply_messages + self.update_messages
        )

    @property
    def total_bytes_with_replies(self) -> int:
        """All interproxy bytes including replies (wire-level count)."""
        return self.query_bytes + self.reply_bytes + self.update_bytes

    def per_request(self, num_requests: int) -> float:
        """Messages per user HTTP request (Fig. 7's normalization)."""
        return self.total_messages / num_requests if num_requests else 0.0

    def bytes_per_request(self, num_requests: int) -> float:
        """Message bytes per user HTTP request (Fig. 8's normalization)."""
        return self.total_bytes / num_requests if num_requests else 0.0


@dataclass
class SharingResult:
    """Outcome of simulating one sharing scheme over one trace.

    The hit taxonomy follows Section V:

    - ``local_hits`` -- served fresh from the requesting proxy's cache;
    - ``remote_hits`` -- served fresh from a peer (found via queries);
    - ``false_misses`` -- a peer held a fresh copy, but the summaries did
      not reveal it, so the request went to the origin server;
    - ``false_hits`` -- summaries predicted a peer copy, queries were
      sent, and no queried peer held a fresh copy;
    - ``remote_stale_hits`` -- a queried peer held the document, but its
      copy was stale;
    - ``local_stale_hits`` -- the requesting proxy's own copy was stale
      (a miss under perfect consistency).
    """

    scheme: str
    trace_name: str
    num_proxies: int
    requests: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    false_hits: int = 0
    false_misses: int = 0
    remote_stale_hits: int = 0
    local_stale_hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    messages: MessageCounts = field(default_factory=MessageCounts)
    summary_memory_bytes: int = 0
    cache_capacity_bytes: int = 0

    @property
    def total_hits(self) -> int:
        """Local plus remote fresh hits (Fig. 1's 'hit ratio' numerator)."""
        return self.local_hits + self.remote_hits

    @property
    def total_hit_ratio(self) -> float:
        """Fraction of requests avoiding origin-server traffic."""
        return self.total_hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of requested bytes avoiding origin-server traffic."""
        if not self.bytes_requested:
            return 0.0
        return self.bytes_hit / self.bytes_requested

    @property
    def false_hit_ratio(self) -> float:
        """Wasted query rounds per request (Fig. 6's y-axis)."""
        return self.false_hits / self.requests if self.requests else 0.0

    @property
    def false_miss_ratio(self) -> float:
        """Lost remote hits per request (the Fig. 2 degradation)."""
        return self.false_misses / self.requests if self.requests else 0.0

    @property
    def remote_stale_hit_ratio(self) -> float:
        """Remote stale hits per request."""
        return self.remote_stale_hits / self.requests if self.requests else 0.0

    @property
    def messages_per_request(self) -> float:
        """Fig. 7's y-axis."""
        return self.messages.per_request(self.requests)

    @property
    def message_bytes_per_request(self) -> float:
        """Fig. 8's y-axis."""
        return self.messages.bytes_per_request(self.requests)

    @property
    def summary_memory_ratio(self) -> float:
        """Summary memory as a fraction of proxy cache size (Table III)."""
        if not self.cache_capacity_bytes:
            return 0.0
        return self.summary_memory_bytes / self.cache_capacity_bytes
