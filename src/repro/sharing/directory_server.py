"""The central directory server baseline.

The paper's related work: "The approach uses a central server to keep
track of the cache directories of all proxies, and all proxies query
the server for cache hits in other proxies.  The drawback of the
approach is that the central server can easily become a bottleneck.
The advantage is that little communication is needed between sibling
proxies except for remote hits."

This simulator implements it: proxies notify the central server of
every insert and evict (one message per change, batched per request),
and consult it on every local miss (one query + one reply).  The
server's directory is exact and current, so there are no false hits or
false misses -- the cost is concentrated entirely on the server, whose
message load this simulator measures (the bottleneck the paper calls
out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.cache import WebCache
from repro.sharing.messages import QUERY_MESSAGE_BYTES
from repro.sharing.results import SharingResult
from repro.traces.model import Trace
from repro.traces.partition import group_of

#: Wire size assumed for one directory change notification (header
#: plus a 16-byte digest, the exact-directory record size).
CHANGE_NOTIFICATION_BYTES = 20 + 16


@dataclass
class DirectoryServerLoad:
    """Messages handled by the central server."""

    queries: int = 0
    replies: int = 0
    change_notifications: int = 0

    @property
    def total(self) -> int:
        """All messages through the server."""
        return self.queries + self.replies + self.change_notifications

    def per_request(self, requests: int) -> float:
        """Server messages per user request -- the bottleneck metric."""
        return self.total / requests if requests else 0.0


def simulate_directory_server(
    trace: Trace,
    num_proxies: int,
    capacity_per_proxy: int,
    policy: str = "lru",
):
    """Run the central-directory protocol over *trace*.

    Returns ``(SharingResult, DirectoryServerLoad)``.  The
    ``SharingResult``'s message counters record *proxy-side* protocol
    traffic (queries to the server and change notifications); the
    ``DirectoryServerLoad`` records everything the server handles.
    """
    directory: Dict[str, Set[int]] = {}
    versions: Dict[str, Dict[int, int]] = {}

    def on_insert(proxy: int):
        def hook(url: str) -> None:
            directory.setdefault(url, set()).add(proxy)
            server.change_notifications += 1
            result.messages.update_messages += 1
            result.messages.update_bytes += CHANGE_NOTIFICATION_BYTES

        return hook

    def on_evict(proxy: int):
        def hook(url: str) -> None:
            holders = directory.get(url)
            if holders is not None:
                holders.discard(proxy)
                if not holders:
                    del directory[url]
            versions.get(url, {}).pop(proxy, None)
            server.change_notifications += 1
            result.messages.update_messages += 1
            result.messages.update_bytes += CHANGE_NOTIFICATION_BYTES

        return hook

    result = SharingResult(
        scheme="directory-server",
        trace_name=trace.name,
        num_proxies=num_proxies,
        cache_capacity_bytes=capacity_per_proxy,
    )
    server = DirectoryServerLoad()
    caches: List[WebCache] = []
    for i in range(num_proxies):
        caches.append(
            WebCache(
                capacity_per_proxy,
                policy=policy,
                on_insert=on_insert(i),
                on_evict=on_evict(i),
            )
        )

    for req in trace:
        g = group_of(req.client_id, num_proxies)
        cache = caches[g]
        result.requests += 1
        result.bytes_requested += req.size

        entry = cache.get(req.url, version=req.version, size=req.size)
        if entry is not None:
            result.local_hits += 1
            result.bytes_hit += entry.size
            continue

        # One query to the server, one reply back.
        server.queries += 1
        server.replies += 1
        result.messages.query_messages += 1
        result.messages.reply_messages += 1
        result.messages.query_bytes += QUERY_MESSAGE_BYTES
        result.messages.reply_bytes += QUERY_MESSAGE_BYTES

        holders = directory.get(req.url, set()) - {g}
        fresh = None
        stale_seen = False
        for j in holders:
            outcome = caches[j].probe(req.url, req.version)
            if outcome == "hit":
                fresh = j
                break
            if outcome == "stale":
                stale_seen = True
        if fresh is not None:
            result.remote_hits += 1
            result.bytes_hit += req.size
            caches[fresh].touch(req.url)
        elif stale_seen:
            result.remote_stale_hits += 1
        cache.put(req.url, req.size, version=req.version)

    result.local_stale_hits = sum(c.stats.stale_hits for c in caches)
    return result, server
