"""Trace-driven cache-sharing simulators.

This subpackage reproduces the paper's simulation studies:

- :mod:`repro.sharing.schemes` -- the four cooperation schemes of
  Section III (no sharing, simple sharing, single-copy sharing, global
  cache) behind Fig. 1;
- :mod:`repro.sharing.summary_sharing` -- the summary cache simulator of
  Section V, parameterized by update policy and summary representation
  (Figs. 2, 5, 6, 7, 8; Table III), plus the ICP message baseline;
- :mod:`repro.sharing.messages` -- the paper's message-size accounting
  (Section V-D);
- :mod:`repro.sharing.results` -- result records shared by all
  simulators.
"""

from repro.sharing.carp import CarpResult, carp_owner, simulate_carp
from repro.sharing.directory_server import (
    DirectoryServerLoad,
    simulate_directory_server,
)
from repro.sharing.hierarchy import HierarchyResult, simulate_hierarchy
from repro.sharing.messages import (
    QUERY_MESSAGE_BYTES,
    bloom_update_bytes,
    digest_update_bytes,
)
from repro.sharing.results import MessageCounts, SharingResult
from repro.sharing.schemes import (
    simulate_global_cache,
    simulate_no_sharing,
    simulate_simple_sharing,
    simulate_single_copy_sharing,
)
from repro.sharing.summary_sharing import (
    IntervalUpdatePolicy,
    PacketFillUpdatePolicy,
    SummarySharingConfig,
    ThresholdUpdatePolicy,
    simulate_icp,
    simulate_summary_sharing,
)

__all__ = [
    "CarpResult",
    "DirectoryServerLoad",
    "HierarchyResult",
    "IntervalUpdatePolicy",
    "MessageCounts",
    "PacketFillUpdatePolicy",
    "QUERY_MESSAGE_BYTES",
    "SharingResult",
    "SummarySharingConfig",
    "ThresholdUpdatePolicy",
    "bloom_update_bytes",
    "carp_owner",
    "digest_update_bytes",
    "simulate_carp",
    "simulate_directory_server",
    "simulate_global_cache",
    "simulate_hierarchy",
    "simulate_icp",
    "simulate_no_sharing",
    "simulate_simple_sharing",
    "simulate_single_copy_sharing",
    "simulate_summary_sharing",
]
