"""Binary mmap trace format: pack once, replay in bounded memory.

The JSONL/CSV readers materialize a full ``List[Request]``, which caps
traces at what fits in RAM (a 10^8-request trace is unrepresentable).
This module defines the package's *streaming* trace container: a compact
struct-packed file (``.sctr``) whose request records are fixed width, so
an ``mmap``-backed reader can yield :class:`Request` objects lazily,
slice in O(1), and seek to any chunk without parsing what precedes it.

File layout (all integers network byte order; see ``docs/traces.md``)::

    offset  size        field
    0       4           magic ``SCTR``
    4       2           format version (currently 1)
    6       2           trace-name length in bytes
    8       8           record count
    16      8           string-table offset (from file start)
    24      8           string-table entry count
    32      8           reserved (zero)
    40      name_len    trace name, UTF-8
    ...     count*24    request records
    ...                 string table: per URL a u16 length + UTF-8 bytes

Each record is 24 bytes -- ``!dIIII``: timestamp (f64 seconds),
client id (u32), URL id (u32, an index into the string table), body
size (u32), and document version (u32).  URLs are deduplicated into the
string table, so a trace's on-disk cost is ~24 bytes/request plus its
*distinct* URL bytes -- versus ~120 bytes/request for JSONL.

Memory model: :class:`BinaryTraceWriter` holds only the URL-dedup dict
(O(distinct URLs)); :class:`BinaryTraceReader` maps the file and decodes
records on the fly, advising consumed pages away (``MADV_DONTNEED``)
during sequential scans so peak RSS stays flat in the trace length.
"""

from __future__ import annotations

import mmap
import struct
from pathlib import Path
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Sequence, Type, Union

from repro.errors import TraceFormatError, TraceIndexError
from repro.traces.model import Request, Trace

PathLike = Union[str, Path]

#: File magic of the binary trace format.
TRACE_MAGIC = b"SCTR"
#: Current format version; bumped on any layout change.
TRACE_FORMAT_VERSION = 1

_TRACE_HEADER = struct.Struct("!4sHHQQQQ")
TRACE_HEADER_SIZE = 40

_TRACE_RECORD = struct.Struct("!dIIII")
TRACE_RECORD_SIZE = 24

_STRING_ENTRY = struct.Struct("!H")
STRING_ENTRY_SIZE = 2

#: A u16 length prefix caps string-table entries (URLs) at 64 KiB - 1.
MAX_URL_BYTES = 0xFFFF
#: Record fields are u32: client id, URL id, size, and version ceilings.
MAX_FIELD_VALUE = 0xFFFFFFFF

#: Writer buffer: packed records accumulate and flush at this size.
_WRITE_BUFFER_BYTES = 1 << 20
#: Sequential reads advise consumed pages away once this many bytes of
#: the mapping are behind the iterator (multiple of the page size).
DEFAULT_ADVISE_WINDOW = 8 * 1024 * 1024


class BinaryTraceWriter:
    """Streaming writer: append requests one at a time, O(distinct URLs).

    The header's record count and string-table offset are back-patched
    on :meth:`close`, so the request count need not be known up front --
    a generator can be drained straight into the file::

        with BinaryTraceWriter(path, name="dec") as writer:
            for request in iter_requests(config):
                writer.append(request)
    """

    def __init__(self, path: PathLike, name: str = "unnamed") -> None:
        name_bytes = name.encode("utf-8")
        if len(name_bytes) > MAX_URL_BYTES:
            raise TraceFormatError(
                f"trace name is {len(name_bytes)} bytes; max {MAX_URL_BYTES}"
            )
        self._path = Path(path)
        self._name = name
        self._name_bytes = name_bytes
        self._fh = open(self._path, "wb")
        self._url_ids: Dict[str, int] = {}
        self._url_bytes: List[bytes] = []
        self._count = 0
        self._buffer = bytearray()
        self._closed = False
        # Placeholder header; patched with real counts on close.
        self._fh.write(
            _TRACE_HEADER.pack(
                TRACE_MAGIC, TRACE_FORMAT_VERSION, len(name_bytes), 0, 0, 0, 0
            )
        )
        self._fh.write(name_bytes)

    @property
    def count(self) -> int:
        """Records appended so far."""
        return self._count

    def append(self, request: Request) -> None:
        """Append one request record."""
        url_id = self._url_ids.get(request.url)
        if url_id is None:
            try:
                encoded = request.url.encode("utf-8")
            except UnicodeEncodeError as exc:
                raise TraceFormatError(
                    f"URL is not encodable as UTF-8: {exc}"
                ) from exc
            if len(encoded) > MAX_URL_BYTES:
                raise TraceFormatError(
                    f"URL is {len(encoded)} bytes; the string table's u16 "
                    f"length prefix caps entries at {MAX_URL_BYTES}"
                )
            url_id = len(self._url_bytes)
            if url_id > MAX_FIELD_VALUE:
                raise TraceFormatError("string table exceeds 2^32 entries")
            self._url_ids[request.url] = url_id
            self._url_bytes.append(encoded)
        try:
            self._buffer += _TRACE_RECORD.pack(
                request.timestamp,
                request.client_id,
                url_id,
                request.size,
                request.version,
            )
        except struct.error as exc:
            raise TraceFormatError(
                f"request field out of range for u32 record layout: "
                f"client_id={request.client_id} size={request.size} "
                f"version={request.version}: {exc}"
            ) from exc
        self._count += 1
        if len(self._buffer) >= _WRITE_BUFFER_BYTES:
            self._fh.write(self._buffer)
            self._buffer.clear()

    def extend(self, requests) -> None:
        """Append every request from an iterable."""
        for request in requests:
            self.append(request)

    def close(self) -> None:
        """Flush records, write the string table, back-patch the header."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._buffer:
                self._fh.write(self._buffer)
                self._buffer.clear()
            strings_offset = self._fh.tell()
            for encoded in self._url_bytes:
                self._fh.write(_STRING_ENTRY.pack(len(encoded)))
                self._fh.write(encoded)
            self._fh.seek(0)
            self._fh.write(
                _TRACE_HEADER.pack(
                    TRACE_MAGIC,
                    TRACE_FORMAT_VERSION,
                    len(self._name_bytes),
                    self._count,
                    strings_offset,
                    len(self._url_bytes),
                    0,
                )
            )
        finally:
            self._fh.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


def pack_trace(requests, path: PathLike, name: str = "unnamed") -> int:
    """Pack an iterable of requests (or a :class:`Trace`) into *path*.

    Returns the number of records written.  Memory stays bounded by the
    distinct-URL table, so a generator of 10^8 requests packs fine.
    """
    if isinstance(requests, Trace):
        name = requests.name if name == "unnamed" else name
    with BinaryTraceWriter(path, name=name) as writer:
        writer.extend(requests)
        return writer.count


class BinaryTraceReader:
    """mmap-backed lazy reader for a packed ``.sctr`` trace.

    Supports the read-only :class:`Trace` surface the replay consumers
    use -- ``__iter__``/``__len__``/``__getitem__``/``name``/
    ``duration``/``clients()``/``head(n)`` -- without ever building a
    request list.  Integer indexing decodes one record; slicing returns
    an O(1) :class:`TraceWindow` view over the same mapping.

    ``advise_window`` bounds sequential-scan RSS: after that many bytes
    of records are consumed, the pages behind the iterator are advised
    away with ``MADV_DONTNEED`` (where the platform supports it).  Pass
    ``None`` to keep pages resident (e.g. many interleaved iterators).
    """

    def __init__(
        self, path: PathLike, advise_window: Optional[int] = DEFAULT_ADVISE_WINDOW
    ) -> None:
        self._path = Path(path)
        self._advise_window = advise_window
        self._fh = open(self._path, "rb")
        try:
            self._mm = mmap.mmap(self._fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:
            self._fh.close()
            raise TraceFormatError(f"{path}: cannot map: {exc}") from exc
        try:
            self._parse_header()
        except TraceFormatError:
            self.close()
            raise

    def _parse_header(self) -> None:
        mm = self._mm
        if len(mm) < TRACE_HEADER_SIZE:
            raise TraceFormatError(
                f"{self._path}: truncated header "
                f"({len(mm)} < {TRACE_HEADER_SIZE} bytes)"
            )
        (
            magic,
            version,
            name_len,
            count,
            strings_offset,
            strings_count,
            _reserved,
        ) = _TRACE_HEADER.unpack_from(mm, 0)
        if magic != TRACE_MAGIC:
            raise TraceFormatError(
                f"{self._path}: bad magic {magic!r} (not a .sctr trace)"
            )
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                f"{self._path}: format version {version}; this reader "
                f"understands {TRACE_FORMAT_VERSION}"
            )
        self._records_offset = TRACE_HEADER_SIZE + name_len
        records_end = self._records_offset + count * TRACE_RECORD_SIZE
        if strings_offset != records_end or strings_offset > len(mm):
            raise TraceFormatError(
                f"{self._path}: string table offset {strings_offset} does "
                f"not follow {count} records ending at {records_end}"
            )
        self.name = bytes(mm[TRACE_HEADER_SIZE : self._records_offset]).decode(
            "utf-8"
        )
        self._count = count
        self._urls = self._parse_strings(strings_offset, strings_count)
        self._clients: Optional[List[int]] = None

    def _parse_strings(self, offset: int, count: int) -> List[str]:
        mm = self._mm
        urls: List[str] = []
        pos = offset
        for index in range(count):
            if pos + STRING_ENTRY_SIZE > len(mm):
                raise TraceFormatError(
                    f"{self._path}: string table truncated at entry {index}"
                )
            (length,) = _STRING_ENTRY.unpack_from(mm, pos)
            pos += STRING_ENTRY_SIZE
            if pos + length > len(mm):
                raise TraceFormatError(
                    f"{self._path}: string entry {index} overruns the file"
                )
            urls.append(bytes(mm[pos : pos + length]).decode("utf-8"))
            pos += length
        return urls

    # -- Trace-compatible read surface ---------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Request]:
        return self.iter_range(0, self._count)

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._count)
            if step != 1:
                raise TraceFormatError(
                    "binary trace slices must have step 1 (contiguous "
                    "records); materialize via list() for strided access"
                )
            return TraceWindow(self, start, max(start, stop))
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise TraceIndexError(index)
        return self._decode(index)

    @property
    def duration(self) -> float:
        """Seconds between the first and last request -- O(1)."""
        if self._count < 2:
            return 0.0
        return self[self._count - 1].timestamp - self[0].timestamp

    def clients(self) -> Sequence[int]:
        """Sorted distinct client ids (one scan, cached thereafter)."""
        if self._clients is None:
            distinct = set()
            start = self._records_offset
            stop = start + self._count * TRACE_RECORD_SIZE
            view = memoryview(self._mm)[start:stop]
            try:
                for fields in _TRACE_RECORD.iter_unpack(view):
                    distinct.add(fields[1])
            finally:
                view.release()
            self._clients = sorted(distinct)
        return self._clients

    def head(self, n: int) -> "TraceWindow":
        """O(1) view of the first *n* requests."""
        return self[:n]

    def urls(self) -> Sequence[str]:
        """The deduplicated string table (index = on-disk URL id)."""
        return self._urls

    def materialize(self) -> Trace:
        """Decode the whole trace into an in-memory :class:`Trace`."""
        return Trace(requests=list(self), name=self.name)

    def iter_range(self, start: int, stop: int) -> Iterator[Request]:
        """Yield records ``start <= i < stop`` lazily, advising consumed
        pages away every ``advise_window`` bytes during the scan."""
        start = max(0, start)
        stop = min(self._count, stop)
        if stop <= start:
            return
        mm = self._mm
        urls = self._urls
        base = self._records_offset
        lo = base + start * TRACE_RECORD_SIZE
        hi = base + stop * TRACE_RECORD_SIZE
        window = self._advise_window
        can_advise = window is not None and hasattr(mm, "madvise")
        advised = lo - (lo % mmap.PAGESIZE)
        # iter_unpack needs buffers that are whole multiples of the
        # record size; round the block step down to a record boundary.
        block_bytes = (_WRITE_BUFFER_BYTES // TRACE_RECORD_SIZE) * TRACE_RECORD_SIZE
        pos = lo
        while pos < hi:
            block_end = min(hi, pos + block_bytes)
            view = memoryview(mm)[pos:block_end]
            try:
                for ts, client_id, url_id, size, version in (
                    _TRACE_RECORD.iter_unpack(view)
                ):
                    yield Request(
                        timestamp=ts,
                        client_id=client_id,
                        url=urls[url_id],
                        size=size,
                        version=version,
                    )
            finally:
                view.release()
            pos = block_end
            if can_advise and pos - advised >= window:
                # Page-align downward; pages before `edge` are consumed.
                edge = pos - (pos % mmap.PAGESIZE)
                if edge > advised:
                    mm.madvise(mmap.MADV_DONTNEED, advised, edge - advised)
                    advised = edge

    def _decode(self, index: int) -> Request:
        offset = self._records_offset + index * TRACE_RECORD_SIZE
        ts, client_id, url_id, size, version = _TRACE_RECORD.unpack_from(
            self._mm, offset
        )
        return Request(
            timestamp=ts,
            client_id=client_id,
            url=self._urls[url_id],
            size=size,
            version=version,
        )

    def close(self) -> None:
        """Unmap the file; the reader is unusable afterwards."""
        mm = getattr(self, "_mm", None)
        if mm is not None and not mm.closed:
            mm.close()
        fh = getattr(self, "_fh", None)
        if fh is not None and not fh.closed:
            fh.close()

    def __enter__(self) -> "BinaryTraceReader":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"BinaryTraceReader({str(self._path)!r}, name={self.name!r}, "
            f"records={self._count}, urls={len(self._urls)})"
        )


class TraceWindow:
    """O(1) contiguous view into a :class:`BinaryTraceReader`.

    Carries the same read surface as a trace (iteration, length, O(1)
    sub-slicing, ``name``/``duration``/``clients()``/``head``), backed by
    the parent mapping -- no records are decoded until iterated.
    """

    __slots__ = ("_reader", "_start", "_stop", "name")

    def __init__(self, reader: BinaryTraceReader, start: int, stop: int) -> None:
        self._reader = reader
        self._start = start
        self._stop = stop
        self.name = f"{reader.name}[{start}:{stop}]"

    def __len__(self) -> int:
        return self._stop - self._start

    def __iter__(self) -> Iterator[Request]:
        return self._reader.iter_range(self._start, self._stop)

    def __getitem__(self, index):
        n = len(self)
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step != 1:
                raise TraceFormatError(
                    "binary trace slices must have step 1 (contiguous "
                    "records); materialize via list() for strided access"
                )
            return TraceWindow(
                self._reader,
                self._start + start,
                self._start + max(start, stop),
            )
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise TraceIndexError(index)
        return self._reader[self._start + index]

    @property
    def duration(self) -> float:
        if len(self) < 2:
            return 0.0
        return self[len(self) - 1].timestamp - self[0].timestamp

    def clients(self) -> Sequence[int]:
        return sorted({req.client_id for req in self})

    def head(self, n: int) -> "TraceWindow":
        return self[:n]

    def materialize(self) -> Trace:
        return Trace(requests=list(self), name=self.name)


def read_binary(path: PathLike, name: str = "") -> Trace:
    """Materialize a packed trace -- parity with :func:`read_jsonl`."""
    with BinaryTraceReader(path, advise_window=None) as reader:
        return Trace(requests=list(reader), name=name or reader.name)


def write_binary(trace: Trace, path: PathLike) -> None:
    """Pack *trace* -- parity with :func:`write_jsonl`."""
    pack_trace(trace, path, name=trace.name)
