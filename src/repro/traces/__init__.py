"""Trace substrate: request records, synthetic generation, statistics.

The paper's evaluation is trace-driven over five proxy traces (DEC, UCB,
UPisa, Questnet, NLANR) that are proprietary and no longer distributed.
This subpackage provides:

- :mod:`repro.traces.model` -- the request record and trace container;
- :mod:`repro.traces.synthetic` -- a generator producing request streams
  with Zipf popularity, Pareto sizes, per-client temporal locality, and
  document modification, the properties the paper's results depend on;
- :mod:`repro.traces.workloads` -- five presets mirroring the structure
  of Table I's traces at laptop scale;
- :mod:`repro.traces.stats` -- Table I statistics (requests, clients,
  infinite cache size, maximum hit/byte-hit ratios);
- :mod:`repro.traces.readers` -- load/save traces as JSONL, CSV, and
  Squid access-log format;
- :mod:`repro.traces.binary` -- the packed binary format: struct-packed
  records plus a URL string table, written streaming and replayed
  through an mmap-backed lazy reader in bounded memory;
- :mod:`repro.traces.partition` -- clientid-mod-N proxy group assignment.
"""

from repro.traces.binary import (
    BinaryTraceReader,
    BinaryTraceWriter,
    TraceWindow,
    pack_trace,
    read_binary,
    write_binary,
)

from repro.traces.analysis import (
    SizeStats,
    fit_zipf_alpha,
    group_overlap_matrix,
    interreference_percentiles,
    sharing_potential,
    size_statistics,
)
from repro.traces.filters import (
    densify_clients,
    filter_clients,
    merge_traces,
    sample_requests,
    time_window,
)
from repro.traces.model import Request, Trace
from repro.traces.partition import (
    grouped_chunks,
    partition_by_client,
    split_by_group,
)
from repro.traces.readers import (
    read_csv,
    read_jsonl,
    read_squid_log,
    write_csv,
    write_jsonl,
    write_squid_log,
)
from repro.traces.stats import TraceStats, compute_stats, mean_cacheable_size
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    generate_trace,
    iter_requests,
)
from repro.traces.workloads import (
    WORKLOAD_PRESETS,
    make_workload,
    pack_workload,
    workload_config,
)

__all__ = [
    "BinaryTraceReader",
    "BinaryTraceWriter",
    "Request",
    "SizeStats",
    "SyntheticTraceConfig",
    "Trace",
    "TraceStats",
    "TraceWindow",
    "WORKLOAD_PRESETS",
    "compute_stats",
    "densify_clients",
    "filter_clients",
    "fit_zipf_alpha",
    "generate_trace",
    "group_overlap_matrix",
    "interreference_percentiles",
    "iter_requests",
    "make_workload",
    "mean_cacheable_size",
    "merge_traces",
    "grouped_chunks",
    "pack_trace",
    "pack_workload",
    "partition_by_client",
    "read_binary",
    "sample_requests",
    "sharing_potential",
    "size_statistics",
    "time_window",
    "read_csv",
    "read_jsonl",
    "read_squid_log",
    "split_by_group",
    "workload_config",
    "write_binary",
    "write_csv",
    "write_jsonl",
    "write_squid_log",
]
