"""Trace persistence: JSONL, CSV, and Squid access-log formats.

JSONL is the package's native round-trip format.  CSV is provided for
spreadsheet analysis.  The Squid ``access.log`` reader/writer lets users
feed real proxy logs into the simulators: the common native format is::

    time.millis elapsed client action/code size method URL ident hier/from content-type

Only the fields the simulators need (time, client, URL, size) are
interpreted; the version validator defaults to 0 for real logs, i.e.
perfect freshness, matching a consistency-oblivious replay.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import TraceFormatError
from repro.traces.model import Request, Trace

PathLike = Union[str, Path]

_FIELDS = ("timestamp", "client_id", "url", "size", "version")


def write_jsonl(trace: Trace, path: PathLike) -> None:
    """Write *trace* as one JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for req in trace:
            record = {
                "timestamp": req.timestamp,
                "client_id": req.client_id,
                "url": req.url,
                "size": req.size,
                "version": req.version,
            }
            fh.write(json.dumps(record, separators=(",", ":")))
            fh.write("\n")


def read_jsonl(path: PathLike, name: str = "") -> Trace:
    """Read a trace written by :func:`write_jsonl`."""
    requests = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                requests.append(
                    Request(
                        timestamp=float(record["timestamp"]),
                        client_id=int(record["client_id"]),
                        url=str(record["url"]),
                        size=int(record["size"]),
                        version=int(record.get("version", 0)),
                    )
                )
            except (ValueError, KeyError, TypeError) as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad JSONL record: {exc}"
                ) from exc
    return Trace(requests=requests, name=name or Path(path).stem)


def write_csv(trace: Trace, path: PathLike) -> None:
    """Write *trace* as CSV with a header row."""
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for req in trace:
            writer.writerow(
                (req.timestamp, req.client_id, req.url, req.size, req.version)
            )


def read_csv(path: PathLike, name: str = "") -> Trace:
    """Read a trace written by :func:`write_csv`."""
    requests = []
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or set(_FIELDS) - set(reader.fieldnames):
            raise TraceFormatError(
                f"{path}: CSV header must contain {_FIELDS}, "
                f"got {reader.fieldnames}"
            )
        for lineno, row in enumerate(reader, start=2):
            try:
                requests.append(
                    Request(
                        timestamp=float(row["timestamp"]),
                        client_id=int(row["client_id"]),
                        url=row["url"],
                        size=int(row["size"]),
                        version=int(row["version"]),
                    )
                )
            except (ValueError, TypeError) as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad CSV record: {exc}"
                ) from exc
    return Trace(requests=requests, name=name or Path(path).stem)


def write_squid_log(trace: Trace, path: PathLike) -> None:
    """Write *trace* in Squid native ``access.log`` format.

    Client ids are rendered as loopback-style addresses ``10.x.y.z`` so
    the reader can map them back to integers.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for req in trace:
            cid = req.client_id
            addr = f"10.{(cid >> 16) & 0xFF}.{(cid >> 8) & 0xFF}.{cid & 0xFF}"
            fh.write(
                f"{req.timestamp:.3f}    120 {addr} TCP_MISS/200 "
                f"{req.size} GET {req.url} - DIRECT/origin text/html\n"
            )


def read_squid_log(path: PathLike, name: str = "") -> Trace:
    """Read a Squid native ``access.log`` into a trace.

    Non-GET lines are skipped.  Client addresses are hashed to integer
    ids (addresses written by :func:`write_squid_log` invert exactly).
    """
    requests = []
    client_ids: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            parts = line.split()
            if len(parts) < 7:
                if line.strip():
                    raise TraceFormatError(
                        f"{path}:{lineno}: squid log line has "
                        f"{len(parts)} fields, expected >= 7"
                    )
                continue
            method = parts[5]
            if method != "GET":
                continue
            try:
                timestamp = float(parts[0])
                addr = parts[2]
                size = int(parts[4])
                url = parts[6]
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad squid log field: {exc}"
                ) from exc
            octets = addr.split(".")
            if len(octets) == 4 and all(o.isdigit() for o in octets):
                client = (
                    (int(octets[1]) << 16)
                    | (int(octets[2]) << 8)
                    | int(octets[3])
                )
            else:
                client = client_ids.setdefault(addr, len(client_ids))
            requests.append(
                Request(
                    timestamp=timestamp,
                    client_id=client,
                    url=url,
                    size=size,
                    version=0,
                )
            )
    return Trace(requests=requests, name=name or Path(path).stem)
