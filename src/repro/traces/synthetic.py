"""Synthetic proxy-trace generation.

The paper's five traces are proprietary, so experiments run over
synthetic traces engineered to exhibit the properties its results
actually depend on:

- **popularity skew** -- document popularity follows a bounded Zipf
  distribution, the empirical regularity behind the logarithmic
  hit-ratio growth the paper cites (Section III references [10], [25],
  [16]);
- **temporal locality** -- each client re-references its own recent
  documents with a configurable probability, with stack-position recency
  bias (the Wisconsin benchmark's locality model, Section IV);
- **heavy-tailed sizes** -- body sizes are Pareto with alpha = 1.1, the
  exact distribution the paper's benchmark uses ("the document sizes
  follow the Pareto distribution");
- **document modification** -- each document's version advances under a
  per-access modification probability, producing the (remote) stale hits
  of Fig. 2;
- **shared working set across clients** -- different clients draw from
  the same global popularity law, which is what makes cache sharing pay
  off at all;
- **10:1 URL-to-server ratio** -- documents are grouped ~10 per server
  name, the ratio the paper observed and the server-name summary
  representation exploits.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.model import Request, Trace
from repro.urlutil import make_url

#: Requests per block of the streaming generator core: large enough to
#: amortise the vectorised draws, small enough that a block of pending
#: draws is cache-resident.
STREAM_BLOCK_SIZE = 8192


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of the synthetic trace generator.

    The defaults produce a mid-sized departmental workload; the presets
    in :mod:`repro.traces.workloads` override them per trace.
    """

    name: str = "synthetic"
    num_requests: int = 50_000
    num_clients: int = 200
    num_documents: int = 20_000
    #: Zipf exponent for document popularity (web studies report 0.6-0.9).
    zipf_alpha: float = 0.75
    #: Zipf exponent for client activity (a few clients dominate).
    client_alpha: float = 0.4
    #: Probability a request re-references from the client's recent stack.
    locality_probability: float = 0.5
    #: Depth of the per-client recency stack.
    locality_stack_depth: int = 64
    #: Probability a *new*-document request stays on the same site as
    #: the client's previous request (browsing-session behaviour).
    #: This is what concentrates a cache's documents onto few servers,
    #: giving the in-cache URL:server ratio the server-name summary
    #: representation banks on.
    server_locality: float = 0.5
    #: Pareto shape for body sizes (the paper's benchmark uses 1.1).
    pareto_alpha: float = 1.1
    #: Mean body size in bytes (the paper divides cache size by 8 KB).
    mean_size: int = 8 * 1024
    #: Ceiling on body size; a few documents exceed the 250 KB
    #: cacheability limit, exercising the admission rule.
    max_size: int = 4 * 1024 * 1024
    #: Per-access probability the document was modified since last seen.
    mod_probability: float = 0.005
    #: Mean request arrival rate, requests/second (for timestamps).
    request_rate: float = 20.0
    #: Average documents per server name (paper observes ~10:1).
    docs_per_server: int = 10
    #: Zipf exponent of server *sizes*: site sizes are heavy-tailed (a
    #: few large sites host many pages).  0 gives equal-size servers.
    server_size_alpha: float = 0.8
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        if self.num_clients < 1:
            raise ConfigurationError("num_clients must be >= 1")
        if self.num_documents < 1:
            raise ConfigurationError("num_documents must be >= 1")
        if not 0.0 <= self.locality_probability <= 1.0:
            raise ConfigurationError(
                "locality_probability must be in [0, 1]"
            )
        if not 0.0 <= self.server_locality <= 1.0:
            raise ConfigurationError(
                "server_locality must be in [0, 1]"
            )
        if self.pareto_alpha <= 1.0:
            raise ConfigurationError(
                "pareto_alpha must be > 1 for a finite mean"
            )
        if not 0.0 <= self.mod_probability <= 1.0:
            raise ConfigurationError("mod_probability must be in [0, 1]")
        if self.request_rate <= 0:
            raise ConfigurationError("request_rate must be > 0")
        if self.docs_per_server < 1:
            raise ConfigurationError("docs_per_server must be >= 1")

    def scaled(self, factor: float) -> "SyntheticTraceConfig":
        """Return a copy with request/client/document counts scaled."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be > 0")
        return replace(
            self,
            num_requests=max(1, int(self.num_requests * factor)),
            num_clients=max(1, int(self.num_clients * factor)),
            num_documents=max(1, int(self.num_documents * factor)),
        )


def _server_boundaries(
    num_documents: int, docs_per_server: int, alpha: float
) -> np.ndarray:
    """Cumulative popularity-rank boundaries of the servers.

    Server *k* hosts the documents whose popularity ranks fall in
    ``[bounds[k-1], bounds[k])``.  Sizes follow a Zipf(alpha) law over
    servers with mean ``docs_per_server`` (every server hosts at least
    one document).
    """
    num_servers = max(1, num_documents // docs_per_server)
    ranks = np.arange(1, num_servers + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    sizes = np.maximum(
        1, np.floor(weights / weights.sum() * num_documents)
    ).astype(np.int64)
    bounds = np.cumsum(sizes)
    # Clip to the document count and make the final server absorb any
    # remainder so every rank has an owner.
    bounds = np.minimum(bounds, num_documents)
    bounds[-1] = num_documents
    return bounds


def _zipf_cdf(n: int, alpha: float) -> np.ndarray:
    """CDF of a bounded Zipf(alpha) distribution over ranks 1..n."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return cdf


def _pareto_sizes(
    rng: np.random.Generator, count: int, alpha: float, mean: int, cap: int
) -> np.ndarray:
    """Draw *count* Pareto body sizes with the requested mean, capped."""
    # Pareto(scale, alpha) has mean scale * alpha / (alpha - 1); invert
    # for the scale that yields the configured mean.
    scale = mean * (alpha - 1.0) / alpha
    sizes = scale * (1.0 + rng.pareto(alpha, size=count))
    return np.minimum(sizes, cap).astype(np.int64).clip(min=64)


class _RecencyStack:
    """A client's bounded LRU stack of recently referenced documents."""

    __slots__ = ("_stack", "_depth")

    def __init__(self, depth: int) -> None:
        self._stack: "OrderedDict[int, None]" = OrderedDict()
        self._depth = depth

    def push(self, doc_id: int) -> None:
        if doc_id in self._stack:
            self._stack.move_to_end(doc_id)
        else:
            self._stack[doc_id] = None
            if len(self._stack) > self._depth:
                self._stack.popitem(last=False)

    def sample(self, rng: random.Random) -> Optional[int]:
        """Pick a document with recency bias (recent = more likely)."""
        if not self._stack:
            return None
        items = list(self._stack)  # oldest first
        # Geometric preference for the most recent entries.
        index = len(items) - 1 - min(
            int(rng.expovariate(0.5)), len(items) - 1
        )
        return items[index]


def _stream_at(state: dict, offset: int) -> np.random.Generator:
    """Clone the generator *state* advanced *offset* 64-bit steps.

    PCG64 supports O(log offset) jump-ahead, so the streaming core can
    open one independent view per pre-draw array of the monolithic
    layout: the stream for array *k* starts at offset ``k * n`` and its
    blockwise draws equal slices of the single ``rng.random(n)`` call
    bit for bit (each uniform double consumes exactly one step).
    """
    bits = np.random.PCG64()
    bits.state = state
    if offset:
        bits.advance(offset)
    return np.random.Generator(bits)


def iter_requests(
    config: SyntheticTraceConfig, block_size: int = STREAM_BLOCK_SIZE
) -> Iterator[Request]:
    """Stream the synthetic trace for *config* without materializing it.

    Bit-exact with ``generate_trace(config)`` for any *block_size*: the
    generator state is identical (per-client recency stacks, popularity
    tables, modification versions are all O(clients + documents)), and
    the random draws are identical because each bulk stream is a
    jump-ahead clone of the seed generator (see :func:`_stream_at`)
    drawn block by block.  Memory is O(clients + documents + block_size)
    regardless of ``num_requests``, so a 10^8-request trace streams in
    bounded memory.
    """
    if block_size < 1:
        raise ConfigurationError("block_size must be >= 1")
    np_rng = np.random.default_rng(config.seed)
    py_rng = random.Random(config.seed ^ 0x5EED)

    doc_cdf = _zipf_cdf(config.num_documents, config.zipf_alpha)
    client_cdf = _zipf_cdf(config.num_clients, config.client_alpha)
    sizes = _pareto_sizes(
        np_rng,
        config.num_documents,
        config.pareto_alpha,
        config.mean_size,
        config.max_size,
    )

    # Shuffle the doc-rank -> doc-id mapping (so document ids carry no
    # popularity information), then assign servers by *popularity
    # rank*: pages of one site are collectively popular, so
    # rank-adjacent documents share a server.  Server sizes are
    # heavy-tailed (Zipf over servers) with mean ``docs_per_server``;
    # together these give a cache of N documents far fewer than N
    # distinct server names -- the URL:server concentration the paper's
    # server-name summary representation exploits.
    doc_ids = np_rng.permutation(config.num_documents)
    server_rank_bounds = _server_boundaries(
        config.num_documents,
        config.docs_per_server,
        config.server_size_alpha,
    )
    server_of_rank = np.searchsorted(
        server_rank_bounds, np.arange(config.num_documents), side="right"
    )
    server_for_doc = np.empty(config.num_documents, dtype=np.int64)
    server_for_doc[doc_ids] = server_of_rank
    client_ids = np_rng.permutation(config.num_clients)

    # The monolithic generator pre-drew six n-length streams here, one
    # np_rng call after another.  Streaming draws the same six streams
    # block by block from jump-ahead clones anchored at this state; the
    # exponential stream sits last so its variable per-value consumption
    # has nothing downstream to disturb.
    n = config.num_requests
    base_state = np_rng.bit_generator.state
    if base_state.get("bit_generator") != "PCG64":
        raise ConfigurationError(
            "streaming generation requires numpy's PCG64 bit generator"
        )
    (
        doc_rank_stream,
        client_rank_stream,
        locality_stream,
        server_stream,
        mod_stream,
        interarrival_stream,
    ) = (_stream_at(base_state, k * n) for k in range(6))

    versions: Dict[int, int] = {}
    stacks: Dict[int, _RecencyStack] = {}
    last_rank: Dict[int, int] = {}
    rank_of_doc = np.empty(config.num_documents, dtype=np.int64)
    rank_of_doc[doc_ids] = np.arange(config.num_documents)

    timestamp = 0.0
    produced = 0
    while produced < n:
        m = min(block_size, n - produced)
        doc_rank_draws = np.searchsorted(doc_cdf, doc_rank_stream.random(m))
        client_rank_draws = np.searchsorted(
            client_cdf, client_rank_stream.random(m)
        )
        locality_draws = locality_stream.random(m)
        server_draws = server_stream.random(m)
        mod_draws = mod_stream.random(m)
        interarrivals = interarrival_stream.exponential(
            1.0 / config.request_rate, size=m
        )

        for i in range(m):
            # Running sum matches np.cumsum's sequential float64
            # accumulation bit for bit.
            timestamp += float(interarrivals[i])
            client = int(client_ids[client_rank_draws[i]])
            stack = stacks.get(client)
            if stack is None:
                stack = _RecencyStack(config.locality_stack_depth)
                stacks[client] = stack

            doc = None
            if locality_draws[i] < config.locality_probability:
                doc = stack.sample(py_rng)
            if doc is None:
                prev_rank = last_rank.get(client)
                if (
                    prev_rank is not None
                    and server_draws[i] < config.server_locality
                ):
                    # Stay on the same site: another page of the previous
                    # request's server (a rank range of its boundary table).
                    server = int(server_of_rank[prev_rank])
                    low = (
                        int(server_rank_bounds[server - 1])
                        if server > 0
                        else 0
                    )
                    high = int(server_rank_bounds[server])
                    rank = low + py_rng.randrange(max(1, high - low))
                else:
                    rank = int(doc_rank_draws[i])
                doc = int(doc_ids[rank])
            last_rank[client] = int(rank_of_doc[doc])
            stack.push(doc)

            if mod_draws[i] < config.mod_probability:
                versions[doc] = versions.get(doc, 0) + 1

            server = int(server_for_doc[doc])
            yield Request(
                timestamp=timestamp,
                client_id=client,
                url=make_url(server, doc),
                size=int(sizes[doc]),
                version=versions.get(doc, 0),
            )
        produced += m


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """Generate a synthetic trace per *config*.

    Deterministic for a fixed config (including seed).  A thin
    materializing wrapper over :func:`iter_requests`; callers that can
    consume an iterable should prefer the streaming core directly.
    """
    return Trace(requests=list(iter_requests(config)), name=config.name)
