"""Trace slicing and transformation utilities.

Operators working with real logs routinely need to cut a trace down
before simulating: a time window (warm-up removal), a client subset, or
a remapping of sparse client ids onto a dense range (the paper's
clientid-mod-N grouping behaves badly when ids are sparse hashes).
All functions return new traces; inputs are never mutated.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.errors import ConfigurationError
from repro.traces.model import Request, Trace


def time_window(
    trace: Trace,
    start: float = 0.0,
    end: Optional[float] = None,
    rebase: bool = True,
) -> Trace:
    """Keep requests with ``start <= timestamp < end``.

    ``rebase=True`` shifts timestamps so the window starts at zero
    (interval-based update policies then behave as if the trace began
    there).
    """
    if end is not None and end < start:
        raise ConfigurationError(
            f"end ({end}) must be >= start ({start})"
        )
    kept = [
        req
        for req in trace
        if req.timestamp >= start
        and (end is None or req.timestamp < end)
    ]
    if rebase and kept:
        offset = kept[0].timestamp
        kept = [
            Request(
                timestamp=req.timestamp - offset,
                client_id=req.client_id,
                url=req.url,
                size=req.size,
                version=req.version,
            )
            for req in kept
        ]
    return Trace(requests=kept, name=f"{trace.name}[{start:g}:{end if end is not None else ''}]")


def filter_clients(
    trace: Trace, predicate: Callable[[int], bool]
) -> Trace:
    """Keep only requests whose client id satisfies *predicate*."""
    kept = [req for req in trace if predicate(req.client_id)]
    return Trace(requests=kept, name=f"{trace.name}/filtered")


def densify_clients(trace: Trace) -> Trace:
    """Remap client ids onto ``0..k-1`` in order of first appearance.

    Sparse ids (hashes, IP-derived integers) make ``clientid mod N``
    grouping uneven; densified ids restore the paper's balanced
    partitioning behaviour.
    """
    mapping: Dict[int, int] = {}
    requests = []
    for req in trace:
        dense = mapping.setdefault(req.client_id, len(mapping))
        requests.append(
            Request(
                timestamp=req.timestamp,
                client_id=dense,
                url=req.url,
                size=req.size,
                version=req.version,
            )
        )
    return Trace(requests=requests, name=f"{trace.name}/dense")


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Interleave several traces by timestamp (stable for ties).

    Client ids are offset per source trace so distinct sources never
    collide (source i's clients map to ``i * stride + client_id``).
    """
    trace_list = list(traces)
    if not trace_list:
        raise ConfigurationError("merge_traces needs at least one trace")
    stride = 1 + max(
        (max((r.client_id for r in t), default=0) for t in trace_list),
        default=0,
    )
    tagged = []
    for index, trace in enumerate(trace_list):
        for req in trace:
            tagged.append(
                Request(
                    timestamp=req.timestamp,
                    client_id=index * stride + req.client_id,
                    url=req.url,
                    size=req.size,
                    version=req.version,
                )
            )
    tagged.sort(key=lambda r: r.timestamp)
    return Trace(requests=tagged, name=name)


def sample_requests(trace: Trace, keep_every: int) -> Trace:
    """Systematic 1-in-``keep_every`` sampling (for quick-look runs).

    Systematic (rather than random) sampling keeps the result
    deterministic; note that sampling breaks reuse patterns, so hit
    ratios from sampled traces underestimate the originals.
    """
    if keep_every < 1:
        raise ConfigurationError(
            f"keep_every must be >= 1, got {keep_every}"
        )
    kept = [req for i, req in enumerate(trace) if i % keep_every == 0]
    return Trace(
        requests=kept, name=f"{trace.name}/1in{keep_every}"
    )
