"""Assigning trace clients to proxy groups.

The paper partitions trace clients into proxy groups: "A client is put
in a group if its clientid mod the group size equals the group ID"
(16 groups for DEC, 8 for UCB and UPisa; Questnet's 12 child proxies and
NLANR's 4 proxies are given by the traces themselves).
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.traces.model import Request, Trace

#: What the partitioners accept: a materialized :class:`Trace`, an
#: mmap-backed binary reader, or any plain request iterable/generator.
TraceLike = Iterable[Request]

#: Default replay chunk: large enough to amortise the per-chunk sweep,
#: small enough that a chunk of annotated requests stays cache-resident.
DEFAULT_CHUNK_SIZE = 2048


def group_of(client_id: int, num_groups: int) -> int:
    """The paper's rule: group = clientid mod number-of-groups."""
    if num_groups < 1:
        raise ConfigurationError(f"num_groups must be >= 1, got {num_groups}")
    return client_id % num_groups


def partition_by_client(trace: TraceLike, num_groups: int) -> List[Trace]:
    """Split *trace* into per-group traces by clientid mod *num_groups*.

    Request order (and thus timestamps) is preserved within each group.
    """
    name = getattr(trace, "name", "stream")
    buckets: List[list] = [[] for _ in range(num_groups)]
    for req in trace:
        buckets[group_of(req.client_id, num_groups)].append(req)
    return [
        Trace(requests=bucket, name=f"{name}/g{gid}")
        for gid, bucket in enumerate(buckets)
    ]


def split_by_group(trace: TraceLike, num_groups: int) -> List[tuple]:
    """Return the merged stream annotated with group ids.

    Yields ``(group_id, request)`` tuples in global timestamp order --
    the form the sharing simulators consume, since cache sharing
    interleaves all proxies' requests in time.
    """
    return [
        (group_of(req.client_id, num_groups), req) for req in trace
    ]


def grouped_chunks(
    trace: TraceLike,
    num_groups: int,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[List[Tuple[int, Request]]]:
    """Yield the merged stream in chunks of ``(group_id, request)`` pairs.

    Group ids for a whole chunk are derived in one comprehension sweep
    rather than one :func:`group_of` call per request -- the batched
    replay path of the sharing simulators.  Request order is unchanged,
    so replaying chunk-by-chunk is bit-exact with the per-request loop.

    Accepts any request iterable.  A materialized trace (or any random
    access sequence) is sliced in place; everything else -- generators,
    mmap-backed binary readers -- streams through :func:`itertools.islice`
    windows, so no more than one chunk is ever resident.
    """
    if num_groups < 1:
        raise ConfigurationError(f"num_groups must be >= 1, got {num_groups}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    requests: Iterable[Request] = (
        trace.requests if isinstance(trace, Trace) else trace
    )
    if isinstance(requests, Sequence):
        for start in range(0, len(requests), chunk_size):
            chunk = requests[start : start + chunk_size]
            yield [(req.client_id % num_groups, req) for req in chunk]
        return
    stream = iter(requests)
    while True:
        chunk = list(islice(stream, chunk_size))
        if not chunk:
            return
        yield [(req.client_id % num_groups, req) for req in chunk]
