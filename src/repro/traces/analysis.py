"""Trace characterization: the workload properties the paper's results
ride on.

The paper's argument rests on empirical regularities of proxy traces --
Zipf-like popularity, heavy-tailed sizes, cross-group request overlap
("the overlap of requests from different users reduces the number of
cold misses").  These tools measure those properties on any trace
(synthetic or a parsed ``access.log``), both to validate the synthetic
generator and to let users characterize their own workloads before
choosing sharing parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.traces.model import Trace
from repro.traces.partition import group_of


def fit_zipf_alpha(trace: Trace, head_fraction: float = 0.5) -> float:
    """Estimate the Zipf exponent of document popularity.

    Fits ``log(frequency) = -alpha * log(rank) + c`` by least squares
    over the most-popular *head_fraction* of ranks (the tail of a
    bounded Zipf bends away from the power law, so fitting the head is
    standard practice).
    """
    if not 0 < head_fraction <= 1:
        raise ConfigurationError(
            f"head_fraction must be in (0, 1], got {head_fraction}"
        )
    counts: Dict[str, int] = {}
    for req in trace:
        counts[req.url] = counts.get(req.url, 0) + 1
    if len(counts) < 3:
        raise ConfigurationError(
            "need at least 3 distinct documents to fit a Zipf exponent"
        )
    freqs = np.sort(np.array(list(counts.values()), dtype=np.float64))[::-1]
    head = max(3, int(len(freqs) * head_fraction))
    ranks = np.arange(1, head + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(
        np.log(ranks), np.log(freqs[:head]), 1
    )
    return float(-slope)


@dataclass(frozen=True)
class SizeStats:
    """Summary statistics of the distinct-document size distribution."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    max: int
    #: Hill estimator of the Pareto tail index over the top 5% of sizes
    #: (alpha ~ 1.1 for the paper's benchmark distribution).
    tail_index: float


def size_statistics(trace: Trace, tail_fraction: float = 0.05) -> SizeStats:
    """Compute :class:`SizeStats` over the distinct documents of *trace*."""
    sizes_by_url: Dict[str, int] = {}
    for req in trace:
        sizes_by_url[req.url] = req.size
    if not sizes_by_url:
        raise ConfigurationError("trace has no requests")
    sizes = np.sort(np.array(list(sizes_by_url.values()), dtype=np.float64))
    k = max(2, int(len(sizes) * tail_fraction))
    tail = sizes[-k:]
    threshold = tail[0] if tail[0] > 0 else 1.0
    hill = 1.0 / max(1e-12, float(np.mean(np.log(tail / threshold))))
    return SizeStats(
        count=len(sizes),
        mean=float(sizes.mean()),
        median=float(np.median(sizes)),
        p95=float(np.percentile(sizes, 95)),
        p99=float(np.percentile(sizes, 99)),
        max=int(sizes[-1]),
        tail_index=hill,
    )


def group_overlap_matrix(
    trace: Trace, num_groups: int
) -> List[List[float]]:
    """Pairwise document overlap between proxy groups.

    ``matrix[i][j]`` is the fraction of group *i*'s distinct documents
    that group *j* also references (``matrix[i][i] = 1``).  High
    off-diagonal values are what make cache sharing pay.
    """
    if num_groups < 1:
        raise ConfigurationError("num_groups must be >= 1")
    docs: List[Set[str]] = [set() for _ in range(num_groups)]
    for req in trace:
        docs[group_of(req.client_id, num_groups)].add(req.url)
    matrix: List[List[float]] = []
    for i in range(num_groups):
        row = []
        for j in range(num_groups):
            if not docs[i]:
                row.append(0.0)
            else:
                row.append(len(docs[i] & docs[j]) / len(docs[i]))
        matrix.append(row)
    return matrix


def sharing_potential(trace: Trace, num_groups: int) -> float:
    """Upper bound on the remote-hit ratio with infinite caches.

    The fraction of requests that miss in their own group's history but
    hit some other group's history -- exactly the requests cache
    sharing can convert from origin fetches to remote hits (ignoring
    capacity and staleness).
    """
    if num_groups < 1:
        raise ConfigurationError("num_groups must be >= 1")
    seen_by_group: List[Set[str]] = [set() for _ in range(num_groups)]
    seen_anywhere: Set[str] = set()
    shareable = 0
    for req in trace:
        g = group_of(req.client_id, num_groups)
        if req.url not in seen_by_group[g] and req.url in seen_anywhere:
            shareable += 1
        seen_by_group[g].add(req.url)
        seen_anywhere.add(req.url)
    return shareable / len(trace) if len(trace) else 0.0


def interreference_percentiles(
    trace: Trace,
    percentiles: Sequence[float] = (50, 90, 99),
) -> Dict[float, float]:
    """Percentiles of the inter-reference distance (in requests).

    The distance between successive references to the same document;
    short distances mean LRU caches capture the reuse, long ones need
    capacity (or a peer's cache).
    """
    last_seen: Dict[str, int] = {}
    distances: List[int] = []
    for index, req in enumerate(trace):
        prev = last_seen.get(req.url)
        if prev is not None:
            distances.append(index - prev)
        last_seen[req.url] = index
    if not distances:
        return {p: float("nan") for p in percentiles}
    array = np.array(distances, dtype=np.float64)
    return {
        p: float(np.percentile(array, p)) for p in percentiles
    }
