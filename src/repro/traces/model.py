"""Request records and trace containers.

A trace is an ordered sequence of :class:`Request` records.  Each request
carries the document's *current* version, standing in for the
last-modified time the paper's traces record: "most traces come with the
last-modified time or the size of a document for every request, and if a
request hits on a document whose last-modified time or size is changed,
we count it as a cache miss."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, List, Sequence

from repro.urlutil import server_of


@dataclass(frozen=True)
class Request:
    """One HTTP GET in a trace.

    Attributes
    ----------
    timestamp:
        Seconds since trace start.
    client_id:
        Integer client identifier (group assignment hashes this).
    url:
        Requested URL.
    size:
        Response body size in bytes.
    version:
        The document's version at request time.  A cached copy with an
        older version is stale.
    """

    timestamp: float
    client_id: int
    url: str
    size: int
    version: int = 0

    @property
    def server(self) -> str:
        """Server-name component of the URL."""
        return server_of(self.url)


@dataclass
class Trace:
    """An ordered request stream plus identifying metadata."""

    requests: List[Request] = field(default_factory=list)
    name: str = "unnamed"

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    @cached_property
    def duration(self) -> float:
        """Seconds between the first and last request.

        Cached after the first access: traces are treated as immutable
        once built (every producer constructs a fresh ``Trace``), so
        invalidation never arises and repeated reads on a multi-million
        request trace stay O(1).
        """
        if len(self.requests) < 2:
            return 0.0
        return self.requests[-1].timestamp - self.requests[0].timestamp

    def clients(self) -> Sequence[int]:
        """Sorted distinct client ids.

        The distinct-scan runs once and is cached (same immutability
        contract as :attr:`duration`); callers must not mutate the
        returned list.
        """
        cached = self.__dict__.get("_clients_cache")
        if cached is None:
            cached = sorted({r.client_id for r in self.requests})
            self.__dict__["_clients_cache"] = cached
        return cached

    def head(self, n: int) -> "Trace":
        """Return a trace of the first *n* requests (the paper replays
        the first 24,000 UPisa requests this way)."""
        return Trace(requests=self.requests[:n], name=f"{self.name}[:{n}]")

    @classmethod
    def from_requests(
        cls, requests: Iterable[Request], name: str = "unnamed"
    ) -> "Trace":
        """Build a trace from any request iterable."""
        return cls(requests=list(requests), name=name)
