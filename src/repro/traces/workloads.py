"""Workload presets mirroring the paper's five traces (Table I).

Each preset is a synthetic stand-in for one of the paper's trace sets,
reproducing its *structure* -- the number of proxy groups, the relative
scale of clients and documents, and qualitative properties the paper
describes -- at laptop scale:

- ``dec`` -- large corporate population, 16 proxy groups.
- ``ucb`` -- dial-IP user population, 8 groups, smaller documents.
- ``upisa`` -- one CS department, 8 groups, strong locality (this is the
  trace the paper replays in experiments 3 and 4).
- ``questnet`` -- 12 child proxies of a regional network; the trace
  records only the children's *misses*, so per-client temporal locality
  is largely filtered out (the child caches absorbed it) and the stream
  has weak locality.
- ``nlanr`` -- 4 top-level parent proxies; client ids map directly to
  proxies.

Request counts are scaled down ~100x from the paper's (full-scale DEC is
3.5M requests); pass ``scale`` to grow or shrink them together.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.traces.model import Trace
from repro.traces.synthetic import (
    SyntheticTraceConfig,
    generate_trace,
    iter_requests,
)


@dataclass(frozen=True)
class WorkloadPreset:
    """A named trace configuration plus its proxy-group count."""

    config: SyntheticTraceConfig
    num_groups: int


WORKLOAD_PRESETS: Dict[str, WorkloadPreset] = {
    "dec": WorkloadPreset(
        config=SyntheticTraceConfig(
            name="dec",
            num_requests=60_000,
            num_clients=800,
            num_documents=40_000,
            zipf_alpha=0.77,
            locality_probability=0.30,
            mean_size=2 * 1024,
            max_size=1024 * 1024,
            mod_probability=0.006,
            request_rate=40.0,
            seed=101,
        ),
        num_groups=16,
    ),
    "ucb": WorkloadPreset(
        config=SyntheticTraceConfig(
            name="ucb",
            num_requests=45_000,
            num_clients=500,
            num_documents=30_000,
            zipf_alpha=0.75,
            locality_probability=0.35,
            mean_size=2 * 1024,
            max_size=1024 * 1024,
            mod_probability=0.005,
            request_rate=30.0,
            seed=102,
        ),
        num_groups=8,
    ),
    "upisa": WorkloadPreset(
        config=SyntheticTraceConfig(
            name="upisa",
            num_requests=30_000,
            num_clients=150,
            num_documents=13_000,
            zipf_alpha=0.8,
            locality_probability=0.45,
            mean_size=2 * 1024,
            max_size=1024 * 1024,
            mod_probability=0.004,
            request_rate=10.0,
            seed=103,
        ),
        num_groups=8,
    ),
    "questnet": WorkloadPreset(
        config=SyntheticTraceConfig(
            name="questnet",
            num_requests=40_000,
            num_clients=12,
            client_alpha=0.2,
            num_documents=30_000,
            zipf_alpha=0.7,
            # Children's caches absorbed most re-references: the parent
            # sees a stream with little per-client temporal locality.
            locality_probability=0.10,
            locality_stack_depth=16,
            mean_size=2 * 1024,
            max_size=1024 * 1024,
            mod_probability=0.007,
            request_rate=25.0,
            seed=104,
        ),
        num_groups=12,
    ),
    "nlanr": WorkloadPreset(
        config=SyntheticTraceConfig(
            name="nlanr",
            num_requests=35_000,
            num_clients=4,
            client_alpha=0.1,
            num_documents=24_000,
            zipf_alpha=0.72,
            locality_probability=0.20,
            locality_stack_depth=32,
            mean_size=2 * 1024,
            max_size=1024 * 1024,
            mod_probability=0.006,
            request_rate=35.0,
            seed=105,
        ),
        num_groups=4,
    ),
}


def workload_config(
    name: str,
    scale: float = 1.0,
    seed: Optional[int] = None,
    num_requests: Optional[int] = None,
) -> Tuple[SyntheticTraceConfig, int]:
    """Resolve preset *name* into ``(config, num_groups)``.

    Applies the same scale/seed adjustments :func:`make_workload` does
    without generating anything -- the streaming/packing paths build
    their own request source from the config.  *num_requests* overrides
    the request count alone (clients and documents untouched), the knob
    the bounded-memory benchmarks turn to grow trace length while the
    working set stays fixed.
    """
    try:
        preset = WORKLOAD_PRESETS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; expected one of "
            f"{sorted(WORKLOAD_PRESETS)}"
        ) from None
    config = preset.config
    if scale != 1.0:
        config = config.scaled(scale)
        if config.num_clients < preset.num_groups:
            config = replace(config, num_clients=preset.num_groups)
    if seed is not None:
        config = replace(config, seed=seed)
    if num_requests is not None:
        if num_requests < 1:
            raise ConfigurationError("num_requests must be >= 1")
        config = replace(config, num_requests=num_requests)
    return config, preset.num_groups


def make_workload(
    name: str, scale: float = 1.0, seed: Optional[int] = None
) -> Tuple[Trace, int]:
    """Generate the preset workload *name* at the given *scale*.

    Returns ``(trace, num_groups)``.  ``scale`` multiplies request,
    client, and document counts together (client counts never scale below
    the group count, so every proxy still receives traffic).  ``seed``
    overrides the preset's fixed generator seed; generation is fully
    deterministic either way, so the same ``(name, scale, seed)`` yields
    an identical trace in any process -- the property the parallel
    experiment runner relies on to keep worker results bit-exact with a
    serial run.
    """
    config, num_groups = workload_config(name, scale=scale, seed=seed)
    return generate_trace(config), num_groups


def pack_workload(
    name: str,
    path,
    scale: float = 1.0,
    seed: Optional[int] = None,
    num_requests: Optional[int] = None,
) -> Tuple[int, int]:
    """Stream preset workload *name* into a packed binary trace at *path*.

    Returns ``(records_written, num_groups)``.  The request stream is
    drained straight from the generator core into the writer, so memory
    stays O(clients + documents + distinct URLs) however large
    *num_requests* is.  The packed file replays bit-exact with
    ``make_workload(name, scale, seed)[0]`` (same config, same stream).
    """
    from repro.traces.binary import pack_trace

    config, num_groups = workload_config(
        name, scale=scale, seed=seed, num_requests=num_requests
    )
    records = pack_trace(iter_requests(config), path, name=config.name)
    return records, num_groups
