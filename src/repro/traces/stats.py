"""Table I statistics: the identifying numbers of a trace.

For each trace the paper reports its duration, request count, client
count, the *infinite cache size* ("the total size in bytes of unique
documents in a trace, i.e. the size of the cache which incurs no cache
replacement"), and the maximum hit and byte-hit ratios achievable with
that infinite cache.

The maximum ratios are computed by running the trace through an
unbounded cache under the perfect-consistency rule: a re-reference to a
document whose version changed is a miss (and contributes the document's
bytes again to the infinite cache size only if its size changed -- the
version bump models a modification, so we count the newest copy's
bytes once per document, matching "unique documents").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.traces.model import Request

TraceLike = Iterable[Request]

#: The cacheability limit the paper's simulations apply.
DEFAULT_CACHEABLE_LIMIT = 250 * 1024


@dataclass(frozen=True)
class TraceStats:
    """The Table I row for one trace."""

    name: str
    duration_seconds: float
    num_requests: int
    num_clients: int
    infinite_cache_bytes: int
    max_hit_ratio: float
    max_byte_hit_ratio: float

    def row(self) -> tuple:
        """Return the stats as a printable Table I row."""
        return (
            self.name,
            f"{self.duration_seconds / 3600:.1f}h",
            self.num_requests,
            self.num_clients,
            f"{self.infinite_cache_bytes / 2**20:.1f} MB",
            f"{self.max_hit_ratio:.3f}",
            f"{self.max_byte_hit_ratio:.3f}",
        )


def compute_stats(trace: TraceLike) -> TraceStats:
    """Compute the Table I statistics for *trace*.

    Single pass over any request iterable (a :class:`Trace`, an
    mmap-backed binary reader, or a generator): count, duration, and
    client set are tracked inline, so the stream is consumed exactly
    once and nothing O(requests) is retained.
    """
    seen_version: Dict[str, int] = {}
    seen_size: Dict[str, int] = {}
    hits = 0
    bytes_hit = 0
    bytes_total = 0
    clients = set()
    n = 0
    first_timestamp = 0.0
    last_timestamp = 0.0

    for req in trace:
        if n == 0:
            first_timestamp = req.timestamp
        last_timestamp = req.timestamp
        n += 1
        clients.add(req.client_id)
        bytes_total += req.size
        prior = seen_version.get(req.url)
        if prior is not None and prior == req.version:
            hits += 1
            bytes_hit += req.size
        seen_version[req.url] = req.version
        seen_size[req.url] = req.size

    infinite_cache = sum(seen_size.values())
    return TraceStats(
        name=getattr(trace, "name", "stream"),
        duration_seconds=last_timestamp - first_timestamp if n >= 2 else 0.0,
        num_requests=n,
        num_clients=len(clients),
        infinite_cache_bytes=infinite_cache,
        max_hit_ratio=hits / n if n else 0.0,
        max_byte_hit_ratio=bytes_hit / bytes_total if bytes_total else 0.0,
    )


def mean_cacheable_size(
    trace: TraceLike, max_object_size: int = DEFAULT_CACHEABLE_LIMIT
) -> int:
    """Mean size of distinct cacheable documents in *trace*.

    Bloom summaries are sized as cache bytes / average document size;
    using the trace's own cacheable mean (rather than the paper's 8 KB
    constant) keeps the nominal load factor honest for heavy-tailed
    synthetic workloads where the tail is excluded by the 250 KB
    admission rule.
    """
    sizes = {}
    for req in trace:
        if req.size <= max_object_size:
            sizes[req.url] = req.size
    if not sizes:
        return 1
    return max(1, sum(sizes.values()) // len(sizes))
