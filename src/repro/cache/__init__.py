"""Proxy cache substrate: byte-capacity caches with pluggable replacement.

The paper's simulations "all use least-recently-used (LRU) as the cache
replacement algorithm, with the restriction that documents larger than
250 KB are not cached" (Section II).  :class:`~repro.cache.webcache.
WebCache` implements exactly that, with the replacement policy pluggable
(LRU/FIFO/LFU/SIZE/GDSF) because the paper notes "different replacement
algorithms may give different results".
"""

from repro.cache.entry import CacheEntry
from repro.cache.policies import (
    FIFOPolicy,
    GDSFPolicy,
    LFUPolicy,
    LRUPolicy,
    ReplacementPolicy,
    SizePolicy,
    make_policy,
)
from repro.cache.stats import CacheStats
from repro.cache.webcache import DEFAULT_MAX_OBJECT_SIZE, WebCache

__all__ = [
    "CacheEntry",
    "CacheStats",
    "DEFAULT_MAX_OBJECT_SIZE",
    "FIFOPolicy",
    "GDSFPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "ReplacementPolicy",
    "SizePolicy",
    "WebCache",
    "make_policy",
]
