"""Replacement policies for :class:`repro.cache.webcache.WebCache`.

The paper's headline results use LRU.  The other policies exist because
Section III explicitly flags replacement as a sensitivity ("Different
replacement algorithms may give different results"), and the benchmark
suite includes a policy sweep.

A policy tracks ordering metadata only; the cache owns the entries.  The
contract:

- :meth:`ReplacementPolicy.on_insert` -- a new key entered the cache.
- :meth:`ReplacementPolicy.on_access` -- an existing key was hit.
- :meth:`ReplacementPolicy.on_remove` -- a key left the cache (any reason).
- :meth:`ReplacementPolicy.victim` -- choose the next key to evict.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Dict

from repro.errors import CacheStateError, ConfigurationError


class ReplacementPolicy(ABC):
    """Interface all replacement policies implement."""

    @abstractmethod
    def on_insert(self, key: str, size: int) -> None:
        """Register a newly inserted *key* of *size* bytes."""

    @abstractmethod
    def on_access(self, key: str) -> None:
        """Register a hit on *key*."""

    @abstractmethod
    def on_remove(self, key: str) -> None:
        """Forget *key* (evicted or explicitly removed)."""

    @abstractmethod
    def victim(self) -> str:
        """Return the key to evict next.  Undefined when empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked keys."""


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used key (the paper's default)."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_insert(self, key: str, size: int) -> None:
        self._order[key] = None

    def on_access(self, key: str) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: str) -> None:
        del self._order[key]

    def victim(self) -> str:
        if not self._order:
            raise CacheStateError("victim() on empty LRU policy")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy(ReplacementPolicy):
    """Evict in insertion order; hits do not refresh position."""

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def on_insert(self, key: str, size: int) -> None:
        self._order[key] = None

    def on_access(self, key: str) -> None:
        pass

    def on_remove(self, key: str) -> None:
        del self._order[key]

    def victim(self) -> str:
        if not self._order:
            raise CacheStateError("victim() on empty FIFO policy")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class LFUPolicy(ReplacementPolicy):
    """Evict the least frequently used key; LRU among ties.

    Implemented with a lazy heap of ``(frequency, sequence, key)``
    entries: stale heap entries are skipped at :meth:`victim` time.
    """

    def __init__(self) -> None:
        self._freq: Dict[str, int] = {}
        self._heap: list = []
        self._seq = 0

    def _push(self, key: str) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._freq[key], self._seq, key))

    def on_insert(self, key: str, size: int) -> None:
        self._freq[key] = 1
        self._push(key)

    def on_access(self, key: str) -> None:
        self._freq[key] += 1
        self._push(key)

    def on_remove(self, key: str) -> None:
        del self._freq[key]

    def victim(self) -> str:
        while self._heap:
            freq, _, key = self._heap[0]
            current = self._freq.get(key)
            if current is None or current != freq:
                heapq.heappop(self._heap)  # stale entry
                continue
            return key
        raise CacheStateError("victim() on empty LFU policy")

    def __len__(self) -> int:
        return len(self._freq)


class SizePolicy(ReplacementPolicy):
    """Evict the largest document first (the classic SIZE policy)."""

    def __init__(self) -> None:
        self._size: Dict[str, int] = {}
        self._heap: list = []  # (-size, seq, key), lazy deletion
        self._seq = 0

    def on_insert(self, key: str, size: int) -> None:
        self._size[key] = size
        self._seq += 1
        heapq.heappush(self._heap, (-size, self._seq, key))

    def on_access(self, key: str) -> None:
        pass

    def on_remove(self, key: str) -> None:
        del self._size[key]

    def victim(self) -> str:
        while self._heap:
            neg_size, _, key = self._heap[0]
            current = self._size.get(key)
            if current is None or current != -neg_size:
                heapq.heappop(self._heap)
                continue
            return key
        raise CacheStateError("victim() on empty SIZE policy")

    def __len__(self) -> int:
        return len(self._size)


class GDSFPolicy(ReplacementPolicy):
    """Greedy-Dual-Size-Frequency: evict min of ``L + freq / size``.

    The inflation term ``L`` (the priority of the last victim) ages out
    documents that were once popular, giving GDSF its scan resistance.
    """

    def __init__(self) -> None:
        self._priority: Dict[str, float] = {}
        self._freq: Dict[str, int] = {}
        self._size: Dict[str, int] = {}
        self._heap: list = []  # (priority, seq, key), lazy deletion
        self._seq = 0
        self._inflation = 0.0

    def _score(self, key: str) -> float:
        return self._inflation + self._freq[key] / max(1, self._size[key])

    def _push(self, key: str) -> None:
        self._priority[key] = self._score(key)
        self._seq += 1
        heapq.heappush(self._heap, (self._priority[key], self._seq, key))

    def on_insert(self, key: str, size: int) -> None:
        self._freq[key] = 1
        self._size[key] = size
        self._push(key)

    def on_access(self, key: str) -> None:
        self._freq[key] += 1
        self._push(key)

    def on_remove(self, key: str) -> None:
        del self._freq[key]
        del self._size[key]
        del self._priority[key]

    def victim(self) -> str:
        while self._heap:
            priority, _, key = self._heap[0]
            current = self._priority.get(key)
            if current is None or current != priority:
                heapq.heappop(self._heap)
                continue
            self._inflation = priority
            return key
        raise CacheStateError("victim() on empty GDSF policy")

    def __len__(self) -> int:
        return len(self._freq)


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "lfu": LFUPolicy,
    "size": SizePolicy,
    "gdsf": GDSFPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``fifo``/``lfu``/``size``/``gdsf``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {sorted(_POLICIES)}"
        ) from None
    return cls()
