"""The proxy cache: byte capacity, 250 KB object limit, pluggable policy.

This is the storage substrate under every sharing scheme in the paper's
simulations (Section II): an LRU cache limited by total bytes, refusing
documents larger than 250 KB, with perfect consistency modelled by a
document version validator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.cache.entry import CacheEntry
from repro.cache.policies import ReplacementPolicy, make_policy
from repro.cache.stats import CacheStats
from repro.core.hashing import md5_digest
from repro.errors import ConfigurationError

#: The paper's admission rule: "documents larger than 250 KB are not cached."
DEFAULT_MAX_OBJECT_SIZE = 250 * 1024

#: Callback invoked with the evicted/inserted URL.
KeyCallback = Callable[[str], None]


class WebCache:
    """A byte-capacity document cache.

    Parameters
    ----------
    capacity_bytes:
        Total bytes of documents the cache may hold.
    max_object_size:
        Admission limit; larger documents are never cached (the paper
        uses 250 KB).  ``None`` disables the limit.
    policy:
        A :class:`~repro.cache.policies.ReplacementPolicy` instance or a
        policy name (default ``"lru"``).
    on_insert / on_evict:
        Hooks called with the URL whenever a document enters or leaves
        the cache -- this is how a local summary tracks the directory.
    store_digests:
        When ``True``, each entry's 16-byte MD5 digest is computed once
        at insert time and stored on the entry, so the exact-directory
        summary and the Bloom rebuild paths never re-hash the directory
        on resize/resync.  Off by default: the trace simulators never
        resize, so paying an MD5 per insert would be pure overhead
        there.  The live proxy (which does resize and resync) turns it
        on; :meth:`digests` backfills lazily either way.

    Notes
    -----
    ``get`` is version-aware: a lookup with a newer document version than
    the cached copy is a *stale hit*, counted as a miss per the paper's
    perfect-consistency assumption.
    """

    def __init__(
        self,
        capacity_bytes: int,
        max_object_size: Optional[int] = DEFAULT_MAX_OBJECT_SIZE,
        policy: Union[str, ReplacementPolicy] = "lru",
        on_insert: Optional[KeyCallback] = None,
        on_evict: Optional[KeyCallback] = None,
        store_digests: bool = False,
    ) -> None:
        if capacity_bytes < 1:
            raise ConfigurationError(
                f"capacity_bytes must be >= 1, got {capacity_bytes}"
            )
        if max_object_size is not None and max_object_size < 1:
            raise ConfigurationError(
                f"max_object_size must be >= 1 or None, got {max_object_size}"
            )
        self.capacity_bytes = capacity_bytes
        self.max_object_size = max_object_size
        self._policy = (
            make_policy(policy) if isinstance(policy, str) else policy
        )
        # Policy name for per-policy eviction attribution in CacheStats.
        self._policy_name = (
            policy.lower()
            if isinstance(policy, str)
            else type(self._policy).__name__.removesuffix("Policy").lower()
        )
        self._entries: Dict[str, CacheEntry] = {}
        self._used = 0
        self._on_insert = on_insert
        self._on_evict = on_evict
        self.store_digests = store_digests
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied."""
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: str) -> bool:
        return url in self._entries

    def peek(self, url: str) -> Optional[CacheEntry]:
        """Return the entry for *url* without touching recency, or ``None``."""
        return self._entries.get(url)

    def urls(self) -> List[str]:
        """Return the cached URLs (no particular order)."""
        return list(self._entries)

    def digests(self) -> Dict[str, bytes]:
        """URL -> stored MD5 digest for every entry.

        Digests missing from an entry (inserted while ``store_digests``
        was off) are computed and backfilled here, so the result always
        covers the whole directory.  This is what the summary
        rebuild/resync paths consume instead of re-hashing every URL.
        """
        table: Dict[str, bytes] = {}
        for url, entry in self._entries.items():
            if entry.digest is None:
                entry.digest = md5_digest(url)
            table[url] = entry.digest
        return table

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def get(self, url: str, version: int = 0, size: int = 0) -> Optional[CacheEntry]:
        """Look up *url*, updating recency and statistics.

        *version* is the document's current version; a cached copy with a
        different version is stale and treated as a miss (the stale copy
        is removed so the caller's subsequent :meth:`put` re-admits the
        fresh one).  *size* is used only for byte statistics.

        Returns the fresh entry on a hit, ``None`` on a miss.
        """
        entry = self._entries.get(url)
        if entry is None:
            self.stats.record_lookup(hit=False, stale=False, size=size)
            return None
        if not entry.is_fresh_for(version):
            self.stats.record_lookup(hit=False, stale=True, size=size)
            self.remove(url)
            return None
        self._policy.on_access(url)
        self.stats.record_lookup(hit=True, stale=False, size=entry.size)
        return entry

    def probe(self, url: str, version: int = 0) -> str:
        """Classify a remote lookup: ``"hit"``, ``"stale"``, or ``"miss"``.

        Used when this cache is queried *as a peer*: unlike :meth:`get`
        it does not disturb statistics, evict stale copies, or touch
        recency (a peer query is not a use of the document until it is
        actually fetched).
        """
        entry = self._entries.get(url)
        if entry is None:
            return "miss"
        return "hit" if entry.is_fresh_for(version) else "stale"

    def put(self, url: str, size: int, version: int = 0) -> List[str]:
        """Admit a document, evicting as needed.

        Returns the list of evicted URLs (empty if none).  A document
        over the size limit or larger than the whole cache is rejected
        and nothing changes.
        """
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        if self.max_object_size is not None and size > self.max_object_size:
            self.stats.rejected_too_large += 1
            return []
        if size > self.capacity_bytes:
            self.stats.rejected_too_large += 1
            return []

        existing = self._entries.get(url)
        if existing is not None:
            # Re-admission of a known URL refreshes size/version in place.
            self._used -= existing.size
            existing.size = size
            existing.version = version
            self._used += size
            self._policy.on_access(url)
            return self._evict_until_fits(protect=url)

        entry = CacheEntry(url=url, size=size, version=version)
        if self.store_digests:
            entry.digest = md5_digest(url)
        self._entries[url] = entry
        self._used += size
        self._policy.on_insert(url, size)
        if self._on_insert is not None:
            self._on_insert(url)
        return self._evict_until_fits(protect=url)

    def touch(self, url: str) -> bool:
        """Mark *url* most recently used without a lookup.

        This is the single-copy sharing behaviour: on a remote hit "the
        other proxy marks the document as most-recently-accessed, and
        increases its caching priority."  Returns ``False`` if the URL is
        not cached.
        """
        if url not in self._entries:
            return False
        self._policy.on_access(url)
        return True

    def remove(self, url: str) -> bool:
        """Explicitly remove *url*; returns ``False`` if absent."""
        entry = self._entries.pop(url, None)
        if entry is None:
            return False
        self._used -= entry.size
        self._policy.on_remove(url)
        if self._on_evict is not None:
            self._on_evict(url)
        return True

    def _evict_until_fits(self, protect: Optional[str] = None) -> List[str]:
        """Evict policy victims until within capacity.

        *protect* shields the just-inserted URL: with non-recency
        policies (e.g. SIZE) the newcomer could otherwise be chosen as
        its own victim, looping forever.
        """
        evicted = []
        while self._used > self.capacity_bytes and self._entries:
            victim = self._policy.victim()
            if victim == protect:
                # Give the policy a different victim by briefly removing
                # the protected key from consideration.
                if len(self._entries) == 1:
                    break
                self._policy.on_remove(victim)
                fallback = self._policy.victim()
                entry = self._entries[victim]
                self._policy.on_insert(victim, entry.size)
                self._policy.on_access(victim)
                victim = fallback
            self.remove(victim)
            self.stats.evictions += 1
            self.stats.record_policy_eviction(self._policy_name)
            evicted.append(victim)
        return evicted

    def clear(self) -> None:
        """Remove every entry (with eviction callbacks)."""
        for url in list(self._entries):
            self.remove(url)

    def __repr__(self) -> str:
        return (
            f"WebCache(capacity={self.capacity_bytes}, "
            f"used={self._used}, entries={len(self._entries)})"
        )
