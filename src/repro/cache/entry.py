"""The unit a proxy cache stores: one document and its validator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheEntry:
    """A cached document.

    Attributes
    ----------
    url:
        The document's key.
    size:
        Body size in bytes; this is what counts against cache capacity.
    version:
        A monotone document version standing in for the last-modified
        time / size validator.  The paper assumes perfect consistency:
        "if a request hits on a document whose last-modified time or size
        is changed, we count it as a cache miss" -- a version mismatch is
        exactly that condition.
    """

    url: str
    size: int
    version: int = 0

    def is_fresh_for(self, version: int) -> bool:
        """True if this copy matches the document's current *version*."""
        return self.version == version
