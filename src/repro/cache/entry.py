"""The unit a proxy cache stores: one document and its validator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheEntry:
    """A cached document.

    Attributes
    ----------
    url:
        The document's key.
    size:
        Body size in bytes; this is what counts against cache capacity.
    version:
        A monotone document version standing in for the last-modified
        time / size validator.  The paper assumes perfect consistency:
        "if a request hits on a document whose last-modified time or size
        is changed, we count it as a cache miss" -- a version mismatch is
        exactly that condition.
    digest:
        The URL's 16-byte MD5 signature, stored at insert time when the
        owning cache feeds a summary (``store_digests=True``), so
        summary rebuild/resync paths reuse it instead of re-hashing the
        whole directory.
    """

    url: str
    size: int
    version: int = 0
    digest: Optional[bytes] = None

    def is_fresh_for(self, version: int) -> bool:
        """True if this copy matches the document's current *version*."""
        return self.version == version
