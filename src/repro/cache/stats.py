"""Hit/miss accounting for a proxy cache."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters a cache accumulates over a request stream.

    ``stale_hits`` count lookups that found the URL but with a changed
    validator; the paper's perfect-consistency assumption treats those as
    misses for hit-ratio purposes, but they are tracked separately because
    *remote* stale hits appear in the protocol message accounting.
    """

    requests: int = 0
    hits: int = 0
    stale_hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    evictions: int = 0
    rejected_too_large: int = 0
    _by_policy: dict = field(default_factory=dict, repr=False)

    @property
    def misses(self) -> int:
        """Requests not served fresh from this cache (includes stale hits)."""
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served fresh from cache."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_ratio(self) -> float:
        """Fraction of requested bytes served fresh from cache."""
        if not self.bytes_requested:
            return 0.0
        return self.bytes_hit / self.bytes_requested

    def record_lookup(self, hit: bool, stale: bool, size: int) -> None:
        """Record one lookup outcome."""
        self.requests += 1
        self.bytes_requested += size
        if hit:
            self.hits += 1
            self.bytes_hit += size
        elif stale:
            self.stale_hits += 1

    def record_policy_eviction(self, policy: str, count: int = 1) -> None:
        """Attribute *count* evictions to the named replacement policy."""
        self._by_policy[policy] = self._by_policy.get(policy, 0) + count

    def by_policy(self) -> dict:
        """Eviction counts keyed by replacement-policy name (a copy)."""
        return dict(self._by_policy)

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        by_policy = dict(self._by_policy)
        for policy, count in other._by_policy.items():
            by_policy[policy] = by_policy.get(policy, 0) + count
        return CacheStats(
            requests=self.requests + other.requests,
            hits=self.hits + other.hits,
            stale_hits=self.stale_hits + other.stale_hits,
            bytes_requested=self.bytes_requested + other.bytes_requested,
            bytes_hit=self.bytes_hit + other.bytes_hit,
            evictions=self.evictions + other.evictions,
            rejected_too_large=self.rejected_too_large
            + other.rejected_too_large,
            _by_policy=by_policy,
        )
