"""Reproduction of *Summary Cache: A Scalable Wide-Area Web Cache Sharing
Protocol* (Fan, Cao, Almeida, Broder; SIGCOMM 1998 / IEEE-ACM ToN 2000).

The package is organized around the paper's structure:

- :mod:`repro.core` -- Bloom filters, counting Bloom filters, summary
  representations, and the analytic math (Sections V-B/C/D, Fig. 4).
- :mod:`repro.cache` -- the proxy cache substrate (Section II).
- :mod:`repro.traces` -- synthetic trace generation and statistics
  standing in for the paper's five proxy traces (Table I).
- :mod:`repro.sharing` -- trace-driven simulators for every sharing
  scheme and summary form (Figs. 1, 2, 5-8; Table III).
- :mod:`repro.protocol` -- the ICP v2 wire format plus the
  ``ICP_OP_DIRUPDATE`` extension (Section VI-A).
- :mod:`repro.proxy` -- an asyncio proxy prototype speaking the protocol
  on localhost (Section VI-B).
- :mod:`repro.simulation` -- a discrete-event proxy-cluster simulator
  reproducing the overhead experiments (Tables II, IV, V).
- :mod:`repro.benchmarkkit` -- a Wisconsin-proxy-benchmark-equivalent
  workload generator (Section IV).
- :mod:`repro.analysis` -- the 100-proxy scalability extrapolation
  (Section V-F).
- :mod:`repro.obs` -- the observability layer every other module
  reports through: metrics registry, ICP trace-event ring, and the
  Prometheus/JSON exposition behind ``GET /metrics``.

Quickstart::

    from repro import CountingBloomFilter

    summary = CountingBloomFilter.for_capacity(10_000, load_factor=8)
    summary.add("http://example.com/index.html")
    assert summary.may_contain("http://example.com/index.html")
    summary.remove("http://example.com/index.html")
"""

from repro.cache import CacheEntry, CacheStats, WebCache
from repro.core import (
    BitArray,
    BloomFilter,
    BloomSummary,
    CounterArray,
    CountingBloomFilter,
    ExactDirectorySummary,
    MD5HashFamily,
    ServerNameSummary,
    SummaryConfig,
    false_positive_probability,
    make_local_summary,
    optimal_num_hashes,
)
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ProxyError,
    ReproError,
    SimulationError,
    TraceFormatError,
)

__version__ = "1.0.0"

__all__ = [
    "BitArray",
    "BloomFilter",
    "BloomSummary",
    "CacheEntry",
    "CacheStats",
    "ConfigurationError",
    "CounterArray",
    "CountingBloomFilter",
    "ExactDirectorySummary",
    "MD5HashFamily",
    "ProtocolError",
    "ProxyError",
    "ReproError",
    "ServerNameSummary",
    "SimulationError",
    "SummaryConfig",
    "TraceFormatError",
    "WebCache",
    "__version__",
    "false_positive_probability",
    "make_local_summary",
    "optimal_num_hashes",
]
